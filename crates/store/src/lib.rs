//! Content-addressed artifact store for the RTL-Timer workspace.
//!
//! The prepare pipeline (`compile → blast → label → featurize`) and the
//! optimization candidate flows are all pure functions of their inputs, so
//! their outputs are memoizable by a **content hash** of (stage inputs × the
//! configuration fields that stage actually reads). This crate provides the
//! store those call sites share:
//!
//! * [`codec`] — hand-rolled compact binary codec ([`Codec`]); the
//!   environment is offline, no serde,
//! * [`hash`] — stable SHA-256 [`ContentHash`] keys via [`KeyBuilder`]
//!   (identical across processes — the disk tier outlives any one run),
//! * [`Store`] — a thread-safe two-tier store: a byte-budgeted LRU
//!   **in-memory** tier holding decoded `Arc<T>` artifacts, over an optional
//!   **on-disk** tier of checksummed binary entries,
//! * [`StatsSnapshot`] — per-namespace hit/miss/byte counters for the bench
//!   reports.
//!
//! Lookups are namespaced by stage name so identical keys from different
//! stages cannot collide and stats stay attributable. Corrupted, truncated,
//! or version-mismatched disk entries are discarded and treated as misses —
//! the store never fails a computation, it only skips redundant ones.
//!
//! Concurrency model: tiers are guarded by plain mutexes (lookups are
//! microseconds next to the seconds-long computations being memoized). Two
//! threads racing to compute the same key both run the computation and the
//! second insert wins; artifacts are deterministic, so this wastes time but
//! never changes results. The architectural point of routing every call
//! site through this one handle is that sharding, batching, or a remote
//! backend later land behind [`Store`] without touching call sites again.

pub mod codec;
pub mod hash;
pub mod stats;

pub use codec::{Codec, CodecError, Dec, Enc, FORMAT_VERSION};
pub use hash::{ContentHash, KeyBuilder};
pub use stats::{NamespaceStats, StatsSnapshot};

use stats::StoreStats;
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default in-memory tier budget: 2 GiB of encoded artifact bytes.
pub const DEFAULT_MEM_BUDGET: usize = 2 << 30;

/// Magic bytes opening every on-disk entry.
const DISK_MAGIC: [u8; 4] = *b"RTLT";
/// Fixed disk-entry header size: magic + format version + payload length.
const DISK_HEADER: usize = 4 + 4 + 8;
/// Trailing FNV-1a checksum size.
const DISK_TRAILER: usize = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of a disk-tier [`Store::gc`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entry files found before eviction.
    pub scanned_files: u64,
    /// Total bytes found before eviction.
    pub scanned_bytes: u64,
    /// Files evicted (oldest mtime first).
    pub evicted_files: u64,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Bytes remaining after eviction.
    pub remaining_bytes: u64,
}

#[derive(Debug)]
struct MemEntry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct MemTier {
    entries: HashMap<(String, ContentHash), MemEntry>,
    total_bytes: usize,
    tick: u64,
}

/// A thread-safe, content-addressed artifact store with an in-memory tier
/// and an optional on-disk tier. See the crate docs for the design.
///
/// Shared by reference (or `Arc`) across worker threads; all methods take
/// `&self`.
#[derive(Debug)]
pub struct Store {
    enabled: bool,
    mem: Mutex<MemTier>,
    mem_budget: usize,
    disk_dir: Option<PathBuf>,
    stats: StoreStats,
    tmp_counter: AtomicU64,
}

impl Store {
    /// Memory-only store with the [`DEFAULT_MEM_BUDGET`].
    pub fn in_memory() -> Store {
        Store::with_mem_budget(DEFAULT_MEM_BUDGET)
    }

    /// Memory-only store with an explicit byte budget for the LRU tier.
    pub fn with_mem_budget(mem_budget: usize) -> Store {
        Store {
            enabled: true,
            mem: Mutex::new(MemTier::default()),
            mem_budget,
            disk_dir: None,
            stats: StoreStats::default(),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// Two-tier store persisting under `dir` (created lazily on first
    /// write). Namespace names become subdirectories, so they must be
    /// path-safe (the pipeline uses short lowercase words).
    pub fn on_disk(dir: impl Into<PathBuf>) -> Store {
        let mut s = Store::in_memory();
        s.disk_dir = Some(dir.into());
        s
    }

    /// A pass-through store: every lookup misses, nothing is retained and
    /// no stats are recorded. Lets non-caching entry points share the
    /// store-aware code path at zero cost.
    pub fn disabled() -> Store {
        let mut s = Store::with_mem_budget(0);
        s.enabled = false;
        s
    }

    /// Whether this store retains anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The on-disk tier root, if one is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        let mem_bytes = self.mem.lock().expect("mem lock").total_bytes as u64;
        self.stats.snapshot(mem_bytes)
    }

    /// Looks up `key` in `ns`, returning the artifact from the first tier
    /// that has it (disk hits are promoted into memory).
    pub fn get<T>(&self, ns: &str, key: ContentHash) -> Option<Arc<T>>
    where
        T: Codec + Send + Sync + 'static,
    {
        if !self.enabled {
            return None;
        }
        if let Some(v) = self.mem_get::<T>(ns, key) {
            self.stats.with_ns(ns, |s| s.mem_hits += 1);
            return Some(v);
        }
        if let Some((v, payload_len)) = self.disk_get::<T>(ns, key) {
            self.stats.with_ns(ns, |s| s.disk_hits += 1);
            let v = Arc::new(v);
            self.mem_put(ns, key, v.clone(), payload_len);
            return Some(v);
        }
        self.stats.with_ns(ns, |s| s.misses += 1);
        None
    }

    /// Stores `value` under `(ns, key)` in every configured tier and
    /// returns it shared.
    pub fn put<T>(&self, ns: &str, key: ContentHash, value: T) -> Arc<T>
    where
        T: Codec + Send + Sync + 'static,
    {
        let value = Arc::new(value);
        if !self.enabled {
            return value;
        }
        // Encode once; the same bytes size the memory tier and fill the
        // disk tier.
        let payload = value.to_bytes();
        self.disk_put(ns, key, &payload);
        self.mem_put(ns, key, value.clone(), payload.len());
        value
    }

    /// Returns the artifact at `(ns, key)`, computing and storing it on a
    /// miss.
    pub fn get_or_compute<T>(
        &self,
        ns: &str,
        key: ContentHash,
        compute: impl FnOnce() -> T,
    ) -> Arc<T>
    where
        T: Codec + Send + Sync + 'static,
    {
        let r: Result<Arc<T>, std::convert::Infallible> =
            self.get_or_try_compute(ns, key, || Ok(compute()));
        match r {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// Fallible [`Store::get_or_compute`]: only successful computations are
    /// stored; errors pass straight through.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns on a miss.
    pub fn get_or_try_compute<T, E>(
        &self,
        ns: &str,
        key: ContentHash,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E>
    where
        T: Codec + Send + Sync + 'static,
    {
        if !self.enabled {
            return compute().map(Arc::new);
        }
        if let Some(v) = self.get::<T>(ns, key) {
            return Ok(v);
        }
        Ok(self.put(ns, key, compute()?))
    }

    // -- in-memory tier ----------------------------------------------------

    fn mem_get<T: Send + Sync + 'static>(&self, ns: &str, key: ContentHash) -> Option<Arc<T>> {
        let mut tier = self.mem.lock().expect("mem lock");
        tier.tick += 1;
        let tick = tier.tick;
        let entry = tier.entries.get_mut(&(ns.to_owned(), key))?;
        entry.last_used = tick;
        entry.value.clone().downcast::<T>().ok()
    }

    /// `bytes` is the encoded payload length — cheap to obtain (the caller
    /// already encoded for the disk tier or read the entry), consistent
    /// across tiers, and proportional to resident footprint for the flat
    /// vector-heavy artifacts the pipeline stores.
    fn mem_put<T: Send + Sync + 'static>(
        &self,
        ns: &str,
        key: ContentHash,
        value: Arc<T>,
        bytes: usize,
    ) {
        if bytes > self.mem_budget {
            return;
        }
        let mut tier = self.mem.lock().expect("mem lock");
        tier.tick += 1;
        let tick = tier.tick;
        if let Some(old) = tier.entries.insert(
            (ns.to_owned(), key),
            MemEntry {
                value,
                bytes,
                last_used: tick,
            },
        ) {
            tier.total_bytes -= old.bytes;
        }
        tier.total_bytes += bytes;
        while tier.total_bytes > self.mem_budget {
            let lru = tier
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    let e = tier.entries.remove(&k).expect("lru entry");
                    tier.total_bytes -= e.bytes;
                    self.stats.count_eviction();
                }
                None => break,
            }
        }
    }

    // -- on-disk tier ------------------------------------------------------

    fn entry_path(dir: &Path, ns: &str, key: ContentHash) -> PathBuf {
        dir.join(ns).join(format!("{}.bin", key.to_hex()))
    }

    fn disk_get<T: Codec>(&self, ns: &str, key: ContentHash) -> Option<(T, usize)> {
        let dir = self.disk_dir.as_deref()?;
        let path = Self::entry_path(dir, ns, key);
        let bytes = std::fs::read(&path).ok()?;
        match Self::parse_entry::<T>(&bytes) {
            Some(v) => {
                self.stats
                    .with_ns(ns, |s| s.bytes_read += bytes.len() as u64);
                // Touch the entry so [`Store::gc`]'s LRU-by-mtime order
                // reflects access recency, not just write time. Memory-tier
                // hits never reach here, but they imply this process
                // already promoted (and touched) the entry once.
                let _ = std::fs::File::options()
                    .append(true)
                    .open(&path)
                    .and_then(|f| {
                        f.set_times(
                            std::fs::FileTimes::new().set_modified(std::time::SystemTime::now()),
                        )
                    });
                Some((v, bytes.len() - DISK_HEADER - DISK_TRAILER))
            }
            None => {
                // Corrupted/truncated/stale entry: drop it so the slot is
                // rewritten by the recompute. Never an error — just a miss.
                let _ = std::fs::remove_file(&path);
                self.stats.with_ns(ns, |s| s.corrupt_entries += 1);
                None
            }
        }
    }

    fn parse_entry<T: Codec>(bytes: &[u8]) -> Option<T> {
        if bytes.len() < DISK_HEADER + DISK_TRAILER || bytes[..4] != DISK_MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return None;
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        if bytes.len() != DISK_HEADER + len + DISK_TRAILER {
            return None;
        }
        let payload = &bytes[DISK_HEADER..DISK_HEADER + len];
        let checksum = u64::from_le_bytes(
            bytes[DISK_HEADER + len..]
                .try_into()
                .expect("trailer bytes"),
        );
        if fnv1a(payload) != checksum {
            return None;
        }
        T::from_bytes(payload).ok()
    }

    // -- disk-tier maintenance --------------------------------------------

    /// Sizes of the disk tier by namespace: `(namespace, files, bytes)`,
    /// sorted by namespace. Empty when no disk tier is configured.
    pub fn disk_usage(&self) -> Vec<(String, u64, u64)> {
        let Some(dir) = self.disk_dir.as_deref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        for ns in entries.flatten() {
            if !ns.path().is_dir() {
                continue;
            }
            let name = ns.file_name().to_string_lossy().into_owned();
            let mut files = 0u64;
            let mut bytes = 0u64;
            if let Ok(items) = std::fs::read_dir(ns.path()) {
                for f in items.flatten() {
                    if let Ok(meta) = f.metadata() {
                        if meta.is_file() {
                            files += 1;
                            bytes += meta.len();
                        }
                    }
                }
            }
            out.push((name, files, bytes));
        }
        out.sort();
        out
    }

    /// Size-bounded garbage collection of the disk tier: evicts entries in
    /// LRU order by file modification time — every disk-tier read touches
    /// the entry's mtime, so the order reflects access recency, not just
    /// write time. Namespaces are collected together — the LRU order is
    /// global, so a hot namespace survives a cold one.
    ///
    /// Failures to stat or remove individual files are skipped (another
    /// process may be evicting concurrently); the report counts what this
    /// call actually freed.
    pub fn gc(&self, budget_bytes: u64) -> GcReport {
        let mut report = GcReport::default();
        let Some(dir) = self.disk_dir.as_deref() else {
            return report;
        };
        // (mtime, size, path) of every entry file.
        let mut entries: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        let Ok(namespaces) = std::fs::read_dir(dir) else {
            return report;
        };
        for ns in namespaces.flatten() {
            if !ns.path().is_dir() {
                continue;
            }
            if let Ok(items) = std::fs::read_dir(ns.path()) {
                for f in items.flatten() {
                    if let Ok(meta) = f.metadata() {
                        if meta.is_file() {
                            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                            entries.push((mtime, meta.len(), f.path()));
                        }
                    }
                }
            }
        }
        report.scanned_files = entries.len() as u64;
        report.scanned_bytes = entries.iter().map(|(_, s, _)| s).sum();
        let mut remaining = report.scanned_bytes;
        entries.sort();
        for (_, size, path) in entries {
            if remaining <= budget_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                remaining -= size;
                report.evicted_files += 1;
                report.evicted_bytes += size;
            }
        }
        report.remaining_bytes = remaining;
        report
    }

    fn disk_put(&self, ns: &str, key: ContentHash, payload: &[u8]) {
        let Some(dir) = self.disk_dir.as_deref() else {
            return;
        };
        let mut bytes = Vec::with_capacity(DISK_HEADER + payload.len() + DISK_TRAILER);
        bytes.extend_from_slice(&DISK_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = fnv1a(payload);
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&checksum.to_le_bytes());

        // Best-effort persistence: a full disk or permission problem must
        // not fail the pipeline. Write-to-temp + rename keeps concurrent
        // readers (and writers racing on the same key) atomic.
        let ns_dir = dir.join(ns);
        if std::fs::create_dir_all(&ns_dir).is_err() {
            return;
        }
        let tmp = ns_dir.join(format!(
            "{}.tmp.{}.{}",
            key.to_hex(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, &bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        let final_path = Self::entry_path(dir, ns, key);
        if std::fs::rename(&tmp, &final_path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.stats
            .with_ns(ns, |s| s.bytes_written += bytes.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContentHash {
        KeyBuilder::new("test").u64(n).finish()
    }

    #[test]
    fn memory_hit_after_put() {
        let store = Store::in_memory();
        assert!(store.get::<u64>("ns", key(1)).is_none());
        store.put("ns", key(1), 42u64);
        assert_eq!(*store.get::<u64>("ns", key(1)).unwrap(), 42);
        let s = store.stats().namespace("ns");
        assert_eq!((s.mem_hits, s.misses), (1, 1));
    }

    #[test]
    fn namespaces_do_not_collide() {
        let store = Store::in_memory();
        store.put("a", key(1), 1u64);
        store.put("b", key(1), 2u64);
        assert_eq!(*store.get::<u64>("a", key(1)).unwrap(), 1);
        assert_eq!(*store.get::<u64>("b", key(1)).unwrap(), 2);
    }

    #[test]
    fn get_or_compute_runs_once() {
        let store = Store::in_memory();
        let mut calls = 0;
        for _ in 0..3 {
            let v = store.get_or_compute("ns", key(2), || {
                calls += 1;
                7u64
            });
            assert_eq!(*v, 7);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let store = Store::in_memory();
        let r: Result<Arc<u64>, &str> = store.get_or_try_compute("ns", key(3), || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        let v = store.get_or_try_compute::<u64, &str>("ns", key(3), || Ok(11));
        assert_eq!(*v.unwrap(), 11);
    }

    #[test]
    fn disabled_store_is_pass_through() {
        let store = Store::disabled();
        let mut calls = 0;
        for _ in 0..2 {
            store.get_or_compute("ns", key(4), || {
                calls += 1;
                1u64
            });
        }
        assert_eq!(calls, 2);
        assert!(store.stats().namespaces.is_empty());
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // Each Vec<u64> of 8 elements encodes to 4 + 64 bytes; budget fits
        // two entries.
        let store = Store::with_mem_budget(150);
        let v = |x: u64| vec![x; 8];
        store.put("ns", key(1), v(1));
        store.put("ns", key(2), v(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.get::<Vec<u64>>("ns", key(1)).is_some());
        store.put("ns", key(3), v(3));
        assert!(store.get::<Vec<u64>>("ns", key(2)).is_none(), "evicted");
        assert!(store.get::<Vec<u64>>("ns", key(1)).is_some());
        assert!(store.get::<Vec<u64>>("ns", key(3)).is_some());
        assert_eq!(store.stats().evictions, 1);
        assert!(store.stats().mem_bytes <= 150);
    }

    #[test]
    fn oversized_value_skips_memory_tier() {
        let store = Store::with_mem_budget(16);
        store.put("ns", key(5), vec![0u64; 100]);
        assert!(store.get::<Vec<u64>>("ns", key(5)).is_none());
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn checksum_catches_corruption() {
        let good = {
            let mut e = Enc::new();
            e.raw(&DISK_MAGIC);
            e.u32(FORMAT_VERSION);
            let payload = 99u64.to_bytes();
            e.u64(payload.len() as u64);
            let sum = fnv1a(&payload);
            e.raw(&payload);
            e.u64(sum);
            e.into_bytes()
        };
        assert_eq!(Store::parse_entry::<u64>(&good), Some(99));
        let mut flipped = good.clone();
        flipped[DISK_HEADER] ^= 1;
        assert_eq!(Store::parse_entry::<u64>(&flipped), None);
        assert_eq!(Store::parse_entry::<u64>(&good[..good.len() - 1]), None);
        let mut stale = good;
        stale[4] ^= 0xFF; // format version
        assert_eq!(Store::parse_entry::<u64>(&stale), None);
    }
}
