//! Content-addressed artifact store for the RTL-Timer workspace.
//!
//! The prepare pipeline (`compile → blast → label → featurize`) and the
//! optimization candidate flows are all pure functions of their inputs, so
//! their outputs are memoizable by a **content hash** of (stage inputs × the
//! configuration fields that stage actually reads). This crate provides the
//! store those call sites share:
//!
//! * [`codec`] — hand-rolled compact binary codec ([`Codec`]); the
//!   environment is offline, no serde,
//! * [`hash`] — stable SHA-256 [`ContentHash`] keys via [`KeyBuilder`]
//!   (identical across processes — the persistent tiers outlive any one
//!   run),
//! * [`entry`] — the checksummed entry envelope every byte tier exchanges,
//! * [`compress`] — the std-only payload compressor: every byte tier holds
//!   mode-tagged *frames* (delta-coded float planes, dictionary-coded LZ,
//!   or a raw escape) and [`Store`] compresses on put / decompresses once
//!   on get, so disk files and wire payloads shrink together,
//! * [`tier`] — the [`StoreTier`] trait and the local tier impls: the
//!   byte-LRU [`MemTier`] and the checksummed [`DiskTier`], plus the
//!   per-namespace [`TierPolicy`] (`RTLT_TIER_POLICY`) choosing packed vs
//!   raw payloads and an optional decoded-front-cache quota per namespace,
//! * [`wire`]/[`remote`]/[`server`] — the `rtlt-stored` artifact service:
//!   a length-prefixed binary protocol, the [`RemoteTier`] client and the
//!   server loop, so CI fleets and developer machines share one warm cache,
//! * [`Store`] — the handle every call site goes through: a byte-budgeted
//!   LRU cache of **decoded** `Arc<T>` artifacts fronting a composable
//!   stack of byte tiers (disk, then optionally remote),
//! * [`StatsSnapshot`] — per-namespace, per-tier hit/miss/byte counters.
//!
//! Lookups are namespaced by stage name so identical keys from different
//! stages cannot collide and stats stay attributable. Corrupted, truncated,
//! or version-mismatched entries are discarded and treated as misses — the
//! store never fails a computation, it only skips redundant ones. The same
//! holds one level up: an unreachable `rtlt-stored` server degrades to
//! misses (recompute), never to errors.
//!
//! Tier order is fallback order: decoded front cache → each byte tier front
//! to back. A hit in a later tier is written back into every earlier tier
//! (read-through population), and a put lands in every tier (write-back),
//! so one warm fleet cache fills local disks incrementally.
//!
//! The front cache holds *decoded* artifacts on purpose: repeated gets of
//! the same key return the same `Arc` (the pipeline leans on that sharing),
//! and hot-loop lookups skip re-decoding. Byte-oriented [`MemTier`]s exist
//! for stacks that never decode — the `rtlt-stored` server fronts its disk
//! tier with one.
//!
//! Concurrency model: tiers are guarded by plain mutexes (lookups are
//! microseconds next to the seconds-long computations being memoized). Two
//! threads racing to compute the same key both run the computation and the
//! second insert wins; artifacts are deterministic, so this wastes time but
//! never changes results. The architectural point of routing every call
//! site through this one handle is that new tiers — sharded fleets, a
//! remote backend — land behind [`Store`] without touching call sites.

pub mod codec;
pub mod compress;
pub mod entry;
pub mod hash;
pub mod plan;
pub mod remote;
pub mod server;
pub mod stats;
pub mod tier;
pub mod wire;

pub use codec::{Codec, CodecError, Dec, Enc, FORMAT_VERSION};
pub use hash::{ContentHash, KeyBuilder};
pub use plan::{LeaseGrant, PlanStats, Planner};
pub use remote::RemoteTier;
pub use stats::{NamespaceStats, StatsSnapshot, TierHits};
pub use tier::{
    DiskTier, GcReport, MemTier, MergeReport, PayloadCoding, StoreTier, TierKind, TierLookup,
    TierPolicy, TierStats,
};

use stats::StoreStats;
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default in-memory front-cache budget: 2 GiB of encoded artifact bytes.
pub const DEFAULT_MEM_BUDGET: usize = 2 << 30;

#[derive(Debug)]
struct DecodedEntry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    last_used: u64,
}

/// The decoded-artifact front cache (LRU by encoded size, with optional
/// per-namespace byte quotas from the [`TierPolicy`]).
#[derive(Debug, Default)]
struct DecodedCache {
    entries: HashMap<(String, ContentHash), DecodedEntry>,
    total_bytes: usize,
    ns_bytes: HashMap<String, usize>,
    tick: u64,
}

impl DecodedCache {
    fn evict(&mut self, k: &(String, ContentHash)) {
        if let Some(e) = self.entries.remove(k) {
            self.total_bytes -= e.bytes;
            if let Some(b) = self.ns_bytes.get_mut(&k.0) {
                *b = b.saturating_sub(e.bytes);
            }
        }
    }
}

/// A thread-safe, content-addressed artifact store: a decoded front cache
/// over a composable stack of byte tiers. See the crate docs for the
/// design.
///
/// Shared by reference (or `Arc`) across worker threads; all methods take
/// `&self`.
#[derive(Debug)]
pub struct Store {
    enabled: bool,
    decoded: Mutex<DecodedCache>,
    mem_budget: usize,
    policy: TierPolicy,
    tiers: Vec<Arc<dyn StoreTier>>,
    stats: StoreStats,
    /// Payload bytes fetched ahead of need by [`Store::prefetch`] (one
    /// batched remote round trip), consumed by the next [`Store::get`] of
    /// the same key — which counts them as remote hits, because that is
    /// where the bytes genuinely came from.
    staged: Mutex<HashMap<(String, ContentHash), Vec<u8>>>,
}

impl Store {
    /// Memory-only store with the [`DEFAULT_MEM_BUDGET`].
    pub fn in_memory() -> Store {
        Store::with_mem_budget(DEFAULT_MEM_BUDGET)
    }

    /// Memory-only store with an explicit byte budget for the decoded
    /// front cache.
    pub fn with_mem_budget(mem_budget: usize) -> Store {
        Store {
            enabled: true,
            decoded: Mutex::new(DecodedCache::default()),
            mem_budget,
            policy: TierPolicy::default(),
            tiers: Vec::new(),
            stats: StoreStats::default(),
            staged: Mutex::new(HashMap::new()),
        }
    }

    /// Two-tier store persisting under `dir` (created lazily on first
    /// write). Namespace names become subdirectories, so they must be
    /// path-safe (the pipeline uses short lowercase words).
    pub fn on_disk(dir: impl Into<PathBuf>) -> Store {
        let mut s = Store::in_memory();
        s.tiers.push(Arc::new(DiskTier::new(dir)));
        s
    }

    /// Store over an explicit tier stack (fallback order, front to back).
    /// The decoded front cache uses `mem_budget` encoded bytes.
    pub fn with_tiers(mem_budget: usize, tiers: Vec<Arc<dyn StoreTier>>) -> Store {
        let mut s = Store::with_mem_budget(mem_budget);
        s.tiers = tiers;
        s
    }

    /// Appends a tier at the back of the fallback order (e.g. a
    /// [`RemoteTier`] behind the local disk tier).
    pub fn push_tier(&mut self, tier: Arc<dyn StoreTier>) {
        self.tiers.push(tier);
    }

    /// A pass-through store: every lookup misses, nothing is retained and
    /// no stats are recorded. Lets non-caching entry points share the
    /// store-aware code path at zero cost.
    pub fn disabled() -> Store {
        let mut s = Store::with_mem_budget(0);
        s.enabled = false;
        s
    }

    /// Whether this store retains anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Replaces the per-namespace payload/quota policy (see
    /// [`TierPolicy::parse`] for the `RTLT_TIER_POLICY` syntax). Affects
    /// future puts and front-cache admissions; frames already in the tiers
    /// stay readable either way, since every frame is self-describing.
    pub fn set_tier_policy(&mut self, policy: TierPolicy) {
        self.policy = policy;
    }

    /// The active per-namespace payload/quota policy.
    pub fn tier_policy(&self) -> &TierPolicy {
        &self.policy
    }

    /// The byte tiers, in fallback order.
    pub fn tiers(&self) -> &[Arc<dyn StoreTier>] {
        &self.tiers
    }

    /// Size snapshots of every byte tier, in fallback order.
    pub fn tier_stats(&self) -> Vec<TierStats> {
        self.tiers.iter().map(|t| t.stats()).collect()
    }

    /// The first disk tier's root, if one is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.tiers.iter().find_map(|t| t.disk_root())
    }

    /// Whether a remote tier is stacked (i.e. [`Store::prefetch`] has a
    /// round trip to save).
    pub fn has_remote(&self) -> bool {
        self.tiers.iter().any(|t| t.kind() == TierKind::Remote)
    }

    /// Batched read-ahead: fetches every `(ns, key)` not already available
    /// locally from the remote tier in **one** pipelined round trip
    /// (`GETM`), staging the payloads for the next [`Store::get`] of each
    /// key. Returns one flag per item: `true` = the next get will be
    /// answered without a remote round trip (locally present, already
    /// staged, or staged by this call).
    ///
    /// A no-op without a remote tier; any batch failure leaves the
    /// affected keys unstaged, which the normal lookup path serves or
    /// recomputes byte-identically.
    pub fn prefetch(&self, items: &[(String, ContentHash)]) -> Vec<bool> {
        let mut local = vec![false; items.len()];
        if !self.enabled {
            return local;
        }
        let Some(remote) = self.tiers.iter().find(|t| t.kind() == TierKind::Remote) else {
            return local;
        };
        // Snapshot in-memory availability under the locks, then release
        // them before the per-item local-tier probes: a disk `contains` is
        // a stat() syscall per key, and holding the decoded lock across
        // hundreds of those would stall every concurrent get. The race
        // window is harmless — worst case a key is fetched redundantly.
        let mut in_memory = vec![false; items.len()];
        {
            let decoded = self.decoded.lock().expect("mem lock");
            let staged = self.staged.lock().expect("staged lock");
            for (i, (ns, key)) in items.iter().enumerate() {
                let slot = (ns.clone(), *key);
                in_memory[i] = decoded.entries.contains_key(&slot) || staged.contains_key(&slot);
            }
        }
        let mut wanted_idx = Vec::new();
        let mut wanted = Vec::new();
        for (i, (ns, key)) in items.iter().enumerate() {
            if in_memory[i]
                || self
                    .tiers
                    .iter()
                    .any(|t| t.kind() != TierKind::Remote && t.contains(ns, *key))
            {
                local[i] = true;
            } else {
                wanted_idx.push(i);
                wanted.push((ns.clone(), *key));
            }
        }
        if wanted.is_empty() {
            return local;
        }
        // The server caps one GETM at MAX_BATCH_KEYS; bigger work sets
        // split into several exchanges instead of being refused (which
        // the client would read as all-miss and silently fall back to
        // per-key latency — the exact cost batching exists to remove).
        for (chunk_idx, chunk) in wanted.chunks(wire::MAX_BATCH_KEYS).enumerate() {
            // Wire turnarounds are charged to the chunk's first namespace —
            // prepare batches are per-stage, so the attribution is exact in
            // practice and approximate at worst.
            let results = self.charge_turns(&chunk[0].0, remote.as_ref(), || {
                remote.get_bytes_batch(chunk)
            });
            let idx = &wanted_idx[chunk_idx * wire::MAX_BATCH_KEYS..];
            let mut staged = self.staged.lock().expect("staged lock");
            for ((i, slot), result) in idx.iter().zip(chunk).zip(results) {
                if let TierLookup::Hit(payload) = result {
                    staged.insert(slot.clone(), payload);
                    local[*i] = true;
                }
            }
        }
        local
    }

    /// Consumes a staged prefetched payload, if one exists.
    fn take_staged(&self, ns: &str, key: ContentHash) -> Option<Vec<u8>> {
        self.staged
            .lock()
            .expect("staged lock")
            .remove(&(ns.to_owned(), key))
    }

    /// Drops every staged prefetched payload that was never consumed.
    /// Callers that [`Store::prefetch`] a work set call this when that
    /// work completes: a staged key the pipeline ended up not reading
    /// (e.g. an earlier-stage artifact short-circuited by a later-stage
    /// hit) must not sit in memory for the store's lifetime.
    pub fn drop_staged(&self) -> usize {
        let mut staged = self.staged.lock().expect("staged lock");
        let n = staged.len();
        staged.clear();
        n
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        let mem_bytes = self.decoded.lock().expect("mem lock").total_bytes as u64;
        let remote_round_trips = self.tiers.iter().map(|t| t.round_trips()).sum();
        self.stats.snapshot(mem_bytes, remote_round_trips)
    }

    /// Blocks until every tier's buffered best-effort writes are in the
    /// tier's custody — the pipelined remote tier drains its
    /// fire-and-forget PUT window. Called at measurement and shutdown
    /// boundaries (end of a suite prepare); the hot path never pays it.
    pub fn flush(&self) {
        for tier in &self.tiers {
            tier.flush();
        }
    }

    /// Charges `turns` wire round trips to namespace `ns`'s counters.
    /// For wire traffic the store did not broker itself — the live
    /// annotation session client pays its EDIT→ANNOTATE turnarounds on
    /// its own connection, and reports them here so `print_store_stats`
    /// style tables show every round trip the run paid in one place.
    pub fn charge_round_trips(&self, ns: &str, turns: u64) {
        if turns > 0 {
            self.stats.with_ns(ns, |s| s.round_trips += turns);
        }
    }

    /// Runs `f` against a tier and charges any wire round trips it paid to
    /// `ns` — tiers expose only a monotonic total, so the delta around the
    /// call is that call's share.
    fn charge_turns<R>(&self, ns: &str, tier: &dyn StoreTier, f: impl FnOnce() -> R) -> R {
        let before = tier.round_trips();
        let out = f();
        let delta = tier.round_trips().saturating_sub(before);
        if delta > 0 {
            self.stats.with_ns(ns, |s| s.round_trips += delta);
        }
        out
    }

    /// Looks up `key` in `ns`, returning the artifact from the first tier
    /// that has it. Hits in later tiers populate every earlier byte tier
    /// (read-through) and the decoded front cache.
    pub fn get<T>(&self, ns: &str, key: ContentHash) -> Option<Arc<T>>
    where
        T: Codec + Send + Sync + 'static,
    {
        if !self.enabled {
            return None;
        }
        if let Some(v) = self.mem_get::<T>(ns, key) {
            self.stats.with_ns(ns, |s| s.mem_hits += 1);
            return Some(v);
        }
        // Staged prefetched frames: counted as a (batched) remote hit —
        // that is where they came from — and written through to the local
        // tiers exactly as a direct remote hit would be.
        if let Some(frame) = self.take_staged(ns, key) {
            let decoded =
                compress::decompress(&frame).and_then(|p| T::from_bytes(&p).ok().map(|v| (p, v)));
            match decoded {
                Some((payload, v)) => {
                    self.stats.with_ns(ns, |s| {
                        s.count_tier_hit(TierKind::Remote);
                        s.batched_hits += 1;
                        s.bytes_read += payload.len() as u64;
                        s.stored_bytes_read += frame.len() as u64;
                    });
                    for tier in &self.tiers {
                        if tier.kind() != TierKind::Remote {
                            tier.put_bytes(ns, key, &frame);
                        }
                    }
                    let v = Arc::new(v);
                    self.mem_put(ns, key, v.clone(), payload.len());
                    return Some(v);
                }
                None => {
                    // Frame damage or shape drift the version stamp missed:
                    // drop the staged copy and walk the tiers normally.
                    self.stats.with_ns(ns, |s| s.corrupt_entries += 1);
                }
            }
        }
        for (i, tier) in self.tiers.iter().enumerate() {
            match self.charge_turns(ns, tier.as_ref(), || tier.get_bytes(ns, key)) {
                TierLookup::Hit(frame) => {
                    let Some(payload) = compress::decompress(&frame) else {
                        // The entry checksum passed but the compress frame
                        // inside is malformed (e.g. written by a corrupted
                        // process): drop the slot so it heals on recompute.
                        tier.remove(ns, key);
                        self.stats.with_ns(ns, |s| s.corrupt_entries += 1);
                        continue;
                    };
                    match T::from_bytes(&payload) {
                        Ok(v) => {
                            self.stats.with_ns(ns, |s| {
                                s.count_tier_hit(tier.kind());
                                s.bytes_read += payload.len() as u64;
                                s.stored_bytes_read += frame.len() as u64;
                            });
                            // Read-through: earlier tiers pick the entry up
                            // so the next lookup stops sooner (a remote hit
                            // warms the local disk). The frame travels as
                            // is — tiers never see decoded bytes.
                            for earlier in &self.tiers[..i] {
                                earlier.put_bytes(ns, key, &frame);
                            }
                            let v = Arc::new(v);
                            self.mem_put(ns, key, v.clone(), payload.len());
                            return Some(v);
                        }
                        Err(_) => {
                            // Envelope validated but the typed decode failed
                            // (shape drift the version stamp missed): drop
                            // the entry so the slot heals on recompute.
                            tier.remove(ns, key);
                            self.stats.with_ns(ns, |s| s.corrupt_entries += 1);
                        }
                    }
                }
                TierLookup::Corrupt => {
                    self.stats.with_ns(ns, |s| s.corrupt_entries += 1);
                }
                TierLookup::Miss => {}
            }
        }
        self.stats.with_ns(ns, |s| s.misses += 1);
        None
    }

    /// Stores `value` under `(ns, key)` in every configured tier and
    /// returns it shared.
    pub fn put<T>(&self, ns: &str, key: ContentHash, value: T) -> Arc<T>
    where
        T: Codec + Send + Sync + 'static,
    {
        let value = Arc::new(value);
        if !self.enabled {
            return value;
        }
        // Encode once; the logical bytes size the front cache, while the
        // byte tiers receive one compress frame (write-back) — packed or
        // raw per the namespace policy.
        let payload = value.to_bytes();
        if !self.tiers.is_empty() {
            let frame = if self.policy.packed(ns) {
                compress::compress(&payload)
            } else {
                compress::raw_frame(&payload)
            };
            self.stats.with_ns(ns, |s| {
                s.bytes_written += payload.len() as u64;
                s.stored_bytes_written += frame.len() as u64;
            });
            for tier in &self.tiers {
                self.charge_turns(ns, tier.as_ref(), || tier.put_bytes(ns, key, &frame));
            }
        }
        self.mem_put(ns, key, value.clone(), payload.len());
        value
    }

    /// Returns the artifact at `(ns, key)`, computing and storing it on a
    /// miss.
    pub fn get_or_compute<T>(
        &self,
        ns: &str,
        key: ContentHash,
        compute: impl FnOnce() -> T,
    ) -> Arc<T>
    where
        T: Codec + Send + Sync + 'static,
    {
        let r: Result<Arc<T>, std::convert::Infallible> =
            self.get_or_try_compute(ns, key, || Ok(compute()));
        match r {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// Fallible [`Store::get_or_compute`]: only successful computations are
    /// stored; errors pass straight through.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns on a miss.
    pub fn get_or_try_compute<T, E>(
        &self,
        ns: &str,
        key: ContentHash,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E>
    where
        T: Codec + Send + Sync + 'static,
    {
        if !self.enabled {
            return compute().map(Arc::new);
        }
        if let Some(v) = self.get::<T>(ns, key) {
            return Ok(v);
        }
        Ok(self.put(ns, key, compute()?))
    }

    // -- decoded front cache -----------------------------------------------

    fn mem_get<T: Send + Sync + 'static>(&self, ns: &str, key: ContentHash) -> Option<Arc<T>> {
        let mut cache = self.decoded.lock().expect("mem lock");
        cache.tick += 1;
        let tick = cache.tick;
        let entry = cache.entries.get_mut(&(ns.to_owned(), key))?;
        entry.last_used = tick;
        entry.value.clone().downcast::<T>().ok()
    }

    /// `bytes` is the encoded (logical) payload length — cheap to obtain
    /// (the caller already encoded for the byte tiers or decompressed the
    /// frame), consistent across tiers, and proportional to resident
    /// footprint for the flat vector-heavy artifacts the pipeline stores.
    fn mem_put<T: Send + Sync + 'static>(
        &self,
        ns: &str,
        key: ContentHash,
        value: Arc<T>,
        bytes: usize,
    ) {
        if bytes > self.mem_budget {
            return;
        }
        // The namespace's decoded-cache quota (RTLT_TIER_POLICY `mem=`):
        // oversized artifacts skip admission, and admission evicts the
        // namespace's own LRU entries first so one bulky namespace (e.g.
        // featurize on the compressed-disk-first policy) cannot crowd the
        // others out of the front cache.
        let quota = self.policy.mem_quota(ns);
        if quota.is_some_and(|q| bytes > q) {
            return;
        }
        let mut cache = self.decoded.lock().expect("mem lock");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(old) = cache.entries.insert(
            (ns.to_owned(), key),
            DecodedEntry {
                value,
                bytes,
                last_used: tick,
            },
        ) {
            cache.total_bytes -= old.bytes;
            if let Some(b) = cache.ns_bytes.get_mut(ns) {
                *b = b.saturating_sub(old.bytes);
            }
        }
        cache.total_bytes += bytes;
        *cache.ns_bytes.entry(ns.to_owned()).or_default() += bytes;
        if let Some(q) = quota {
            while cache.ns_bytes.get(ns).copied().unwrap_or(0) > q {
                let lru = cache
                    .entries
                    .iter()
                    .filter(|((n, _), _)| n == ns)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match lru {
                    Some(k) => {
                        cache.evict(&k);
                        self.stats.count_eviction();
                    }
                    None => break,
                }
            }
        }
        while cache.total_bytes > self.mem_budget {
            let lru = cache
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    cache.evict(&k);
                    self.stats.count_eviction();
                }
                None => break,
            }
        }
    }

    // -- tier maintenance --------------------------------------------------

    /// Sizes of the disk tier by namespace: `(namespace, files, bytes)`,
    /// sorted by namespace. `bytes` is the **on-disk** (stored, possibly
    /// compressed) size. Empty when no disk tier is configured.
    pub fn disk_usage(&self) -> Vec<(String, u64, u64)> {
        self.tiers
            .iter()
            .find_map(|t| t.disk_root().map(|d| DiskTier::new(d).usage()))
            .unwrap_or_default()
    }

    /// Like [`Store::disk_usage`] but also reporting decoded payload sizes:
    /// `(namespace, files, stored_bytes, decoded_bytes)` per namespace —
    /// the ratio of the two byte columns is the namespace's on-disk
    /// compression ratio.
    pub fn disk_usage_decoded(&self) -> Vec<(String, u64, u64, u64)> {
        self.tiers
            .iter()
            .find_map(|t| t.disk_root().map(|d| DiskTier::new(d).usage_decoded()))
            .unwrap_or_default()
    }

    /// Size-bounded garbage collection of the **local** tiers: each
    /// non-remote byte tier evicts down to `budget_bytes` of **on-disk
    /// (compressed) bytes** — the budget means disk footprint, not decoded
    /// payload size (the disk tier evicts in LRU order by access-refreshed
    /// mtime). Remote tiers are skipped —
    /// one client must not evict a fleet's shared cache as a side effect;
    /// use [`RemoteTier::gc_remote`] (or the server's own budget) for
    /// that, deliberately.
    ///
    /// Failures to stat or remove individual files are skipped (another
    /// process may be evicting concurrently); the report counts what this
    /// call actually freed.
    pub fn gc(&self, budget_bytes: u64) -> GcReport {
        let mut report = GcReport::default();
        for tier in &self.tiers {
            if tier.kind() != TierKind::Remote {
                report.absorb(tier.gc(budget_bytes));
            }
        }
        report
    }

    /// Merges every valid entry under `src_dir` (another store's disk-tier
    /// root) into this store's disk tier — the assembly step of sharded
    /// fleet preparation: N workers prepare disjoint design subsets into
    /// disjoint cache dirs, then one merge builds the single warm cache.
    /// Returns a zero report when this store has no disk tier.
    pub fn merge_disk_tier(&self, src_dir: &Path) -> MergeReport {
        for tier in &self.tiers {
            if let Some(root) = tier.disk_root() {
                return DiskTier::new(root).merge_from(src_dir);
            }
        }
        MergeReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContentHash {
        KeyBuilder::new("test").u64(n).finish()
    }

    #[test]
    fn memory_hit_after_put() {
        let store = Store::in_memory();
        assert!(store.get::<u64>("ns", key(1)).is_none());
        store.put("ns", key(1), 42u64);
        assert_eq!(*store.get::<u64>("ns", key(1)).unwrap(), 42);
        let s = store.stats().namespace("ns");
        assert_eq!((s.mem_hits, s.misses), (1, 1));
    }

    #[test]
    fn namespaces_do_not_collide() {
        let store = Store::in_memory();
        store.put("a", key(1), 1u64);
        store.put("b", key(1), 2u64);
        assert_eq!(*store.get::<u64>("a", key(1)).unwrap(), 1);
        assert_eq!(*store.get::<u64>("b", key(1)).unwrap(), 2);
    }

    #[test]
    fn get_or_compute_runs_once() {
        let store = Store::in_memory();
        let mut calls = 0;
        for _ in 0..3 {
            let v = store.get_or_compute("ns", key(2), || {
                calls += 1;
                7u64
            });
            assert_eq!(*v, 7);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let store = Store::in_memory();
        let r: Result<Arc<u64>, &str> = store.get_or_try_compute("ns", key(3), || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        let v = store.get_or_try_compute::<u64, &str>("ns", key(3), || Ok(11));
        assert_eq!(*v.unwrap(), 11);
    }

    #[test]
    fn disabled_store_is_pass_through() {
        let store = Store::disabled();
        let mut calls = 0;
        for _ in 0..2 {
            store.get_or_compute("ns", key(4), || {
                calls += 1;
                1u64
            });
        }
        assert_eq!(calls, 2);
        assert!(store.stats().namespaces.is_empty());
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // Each Vec<u64> of 8 elements encodes to 4 + 64 bytes; budget fits
        // two entries.
        let store = Store::with_mem_budget(150);
        let v = |x: u64| vec![x; 8];
        store.put("ns", key(1), v(1));
        store.put("ns", key(2), v(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.get::<Vec<u64>>("ns", key(1)).is_some());
        store.put("ns", key(3), v(3));
        assert!(store.get::<Vec<u64>>("ns", key(2)).is_none(), "evicted");
        assert!(store.get::<Vec<u64>>("ns", key(1)).is_some());
        assert!(store.get::<Vec<u64>>("ns", key(3)).is_some());
        assert_eq!(store.stats().evictions, 1);
        assert!(store.stats().mem_bytes <= 150);
    }

    #[test]
    fn oversized_value_skips_memory_tier() {
        let store = Store::with_mem_budget(16);
        store.put("ns", key(5), vec![0u64; 100]);
        assert!(store.get::<Vec<u64>>("ns", key(5)).is_none());
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn explicit_mem_byte_tier_serves_and_counts_as_mem() {
        // A byte MemTier in the stack: the decoded front cache has no
        // budget, so every get re-reads (and re-decodes) tier bytes.
        let store = Store::with_tiers(0, vec![Arc::new(MemTier::new(1 << 20))]);
        store.put("ns", key(6), 9u64);
        assert_eq!(*store.get::<u64>("ns", key(6)).unwrap(), 9);
        let s = store.stats().namespace("ns");
        assert_eq!((s.mem_hits, s.disk_hits, s.remote_hits), (1, 0, 0));
    }

    /// A byte tier that reports itself as remote and counts how it is
    /// consulted — per-key vs batched — so prefetch behavior is
    /// observable without a socket.
    #[derive(Debug)]
    struct FakeRemote {
        bytes: MemTier,
        single_gets: std::sync::atomic::AtomicU64,
        batch_calls: std::sync::atomic::AtomicU64,
    }

    impl FakeRemote {
        fn new() -> FakeRemote {
            FakeRemote {
                bytes: MemTier::new(1 << 20),
                single_gets: Default::default(),
                batch_calls: Default::default(),
            }
        }
    }

    impl StoreTier for FakeRemote {
        fn kind(&self) -> TierKind {
            TierKind::Remote
        }
        fn get_bytes(&self, ns: &str, key: ContentHash) -> TierLookup {
            self.single_gets
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.bytes.get_bytes(ns, key)
        }
        fn get_bytes_batch(&self, items: &[(String, ContentHash)]) -> Vec<TierLookup> {
            self.batch_calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            items
                .iter()
                .map(|(ns, key)| self.bytes.get_bytes(ns, *key))
                .collect()
        }
        fn put_bytes(&self, ns: &str, key: ContentHash, payload: &[u8]) {
            self.bytes.put_bytes(ns, key, payload);
        }
        fn stats(&self) -> TierStats {
            self.bytes.stats()
        }
        fn gc(&self, budget_bytes: u64) -> GcReport {
            self.bytes.gc(budget_bytes)
        }
    }

    #[test]
    fn prefetch_stages_one_batched_round_trip_and_counts_remote_hits() {
        let remote = Arc::new(FakeRemote::new());
        remote.put_bytes("ns", key(1), &compress::raw_frame(&41u64.to_bytes()));
        remote.put_bytes("ns", key(2), &compress::raw_frame(&42u64.to_bytes()));
        let mut store = Store::in_memory();
        store.push_tier(remote.clone());
        assert!(store.has_remote());

        let items: Vec<(String, ContentHash)> =
            (1..=3).map(|i| ("ns".to_owned(), key(i))).collect();
        let flags = store.prefetch(&items);
        assert_eq!(flags, vec![true, true, false], "key 3 is nowhere");
        assert_eq!(
            remote
                .batch_calls
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "one pipelined round trip for the whole set"
        );
        assert_eq!(
            remote
                .single_gets
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );

        // The staged keys are served as (batched) remote hits without
        // touching the per-key path again.
        assert_eq!(*store.get::<u64>("ns", key(1)).unwrap(), 41);
        assert_eq!(*store.get::<u64>("ns", key(2)).unwrap(), 42);
        let s = store.stats().namespace("ns");
        assert_eq!((s.remote_hits, s.batched_hits, s.misses), (2, 2, 0));
        assert_eq!(
            remote
                .single_gets
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );

        // Re-prefetching already-served keys is free: they sit in the
        // decoded front cache, so nothing is requested.
        let again = store.prefetch(&items[..2]);
        assert_eq!(again, vec![true, true]);
        assert_eq!(
            remote
                .batch_calls
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );

        // The unstaged key falls through to the normal per-key walk.
        assert!(store.get::<u64>("ns", key(3)).is_none());
        assert_eq!(store.stats().namespace("ns").misses, 1);
    }

    #[test]
    fn prefetch_chunks_batches_past_the_wire_key_cap() {
        let remote = Arc::new(FakeRemote::new());
        remote.put_bytes("ns", key(0), &compress::raw_frame(&7u64.to_bytes()));
        remote.put_bytes("ns", key(1), &compress::raw_frame(&9u64.to_bytes()));
        remote.put_bytes(
            "ns",
            key(wire::MAX_BATCH_KEYS as u64),
            &compress::raw_frame(&8u64.to_bytes()),
        );
        let mut store = Store::in_memory();
        store.push_tier(remote.clone());
        // One key past the cap: the client must split into two exchanges
        // rather than send one refusable oversized batch.
        let items: Vec<(String, ContentHash)> = (0..=wire::MAX_BATCH_KEYS as u64)
            .map(|i| ("ns".to_owned(), key(i)))
            .collect();
        let flags = store.prefetch(&items);
        assert_eq!(
            remote
                .batch_calls
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
        assert!(flags[0] && flags[1] && flags[wire::MAX_BATCH_KEYS]);
        assert_eq!(flags.iter().filter(|f| **f).count(), 3);
        assert_eq!(*store.get::<u64>("ns", key(0)).unwrap(), 7);
        assert_eq!(
            *store
                .get::<u64>("ns", key(wire::MAX_BATCH_KEYS as u64))
                .unwrap(),
            8
        );
        // The one-shot drain: a staged key the run never consumed
        // (key 1) is dropped instead of living for the store's lifetime.
        assert_eq!(store.drop_staged(), 1);
        assert_eq!(*store.get::<u64>("ns", key(1)).unwrap(), 9, "refetches");
    }

    #[test]
    fn prefetch_without_a_remote_tier_is_a_no_op() {
        let store = Store::on_disk(
            std::env::temp_dir().join(format!("rtlt-prefetch-noop-{}", std::process::id())),
        );
        assert!(!store.has_remote());
        let flags = store.prefetch(&[("ns".to_owned(), key(9))]);
        assert_eq!(flags, vec![false]);
        assert!(store.stats().namespaces.is_empty(), "no counters touched");
    }

    #[test]
    fn corrupt_staged_payload_heals_through_the_normal_walk() {
        let remote = Arc::new(FakeRemote::new());
        // Stage bytes that are not a valid compress frame.
        remote.put_bytes("ns", key(4), &[1, 2, 3]);
        let mut store = Store::in_memory();
        store.push_tier(remote.clone());
        assert_eq!(store.prefetch(&[("ns".to_owned(), key(4))]), vec![true]);
        // The staged decode fails; the tier walk then re-reads the same
        // bad bytes per-key, drops the slot, and reports a miss.
        assert!(store.get::<u64>("ns", key(4)).is_none());
        let s = store.stats().namespace("ns");
        assert!(s.corrupt_entries >= 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn namespace_mem_quota_bounds_the_decoded_cache() {
        // Global budget is roomy; "feat" carries a 150-byte quota so its
        // third entry evicts its own LRU while "other" is untouched.
        let mut store = Store::with_mem_budget(1 << 20);
        store.set_tier_policy(TierPolicy::parse("feat=raw:mem=150").expect("policy"));
        let v = |x: u64| vec![x; 8]; // encodes to 4 + 64 bytes
        store.put("other", key(9), v(9));
        store.put("feat", key(1), v(1));
        store.put("feat", key(2), v(2));
        assert!(store.get::<Vec<u64>>("feat", key(1)).is_some());
        store.put("feat", key(3), v(3));
        assert!(
            store.get::<Vec<u64>>("feat", key(2)).is_none(),
            "namespace LRU victim"
        );
        assert!(store.get::<Vec<u64>>("feat", key(1)).is_some());
        assert!(store.get::<Vec<u64>>("feat", key(3)).is_some());
        assert!(
            store.get::<Vec<u64>>("other", key(9)).is_some(),
            "other namespaces keep their entries"
        );
        assert_eq!(store.stats().evictions, 1);
        // An artifact over the namespace quota skips admission entirely.
        store.put("feat", key(4), vec![0u64; 100]);
        assert!(store.get::<Vec<u64>>("feat", key(4)).is_none());
    }

    #[test]
    fn gc_budgets_on_disk_compressed_bytes() {
        let dir = std::env::temp_dir().join(format!("rtlt-gc-compressed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::on_disk(&dir);
        // 160 KB of zeros compress to a sliver of their decoded size.
        store.put("featurize", key(11), vec![0u64; 20_000]);
        let usage = store.disk_usage_decoded();
        assert_eq!(usage.len(), 1);
        let (files, stored, decoded) = (usage[0].1, usage[0].2, usage[0].3);
        assert_eq!(files, 1);
        assert!(
            stored < decoded / 4,
            "zeros must compress well ({stored} vs {decoded})"
        );
        // A budget that fits the compressed file but not the decoded bytes:
        // gc must budget against what is actually on disk and keep it.
        let report = store.gc(stored + 1024);
        assert_eq!(report.evicted_files, 0, "budget measures on-disk bytes");
        let fresh = Store::on_disk(&dir);
        assert!(fresh.get::<Vec<u64>>("featurize", key(11)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn typed_decode_failure_heals_the_tier_slot() {
        // Store a u64, then ask the same key for a String: the payload
        // validates at the tier envelope level but fails the typed decode,
        // so the entry must be dropped and counted corrupt.
        let store = Store::with_tiers(0, vec![Arc::new(MemTier::new(1 << 20))]);
        store.put("ns", key(7), 1234u64);
        assert!(store.get::<String>("ns", key(7)).is_none());
        let s = store.stats().namespace("ns");
        assert_eq!(s.corrupt_entries, 1);
        assert_eq!(s.misses, 1);
        // The slot healed: the u64 entry is gone too (dropped, not stale).
        assert!(store.get::<u64>("ns", key(7)).is_none());
    }
}
