//! Stable content hashing for store keys.
//!
//! Keys must be identical across processes and platforms (the on-disk tier
//! is shared by every bench invocation), so we hand-roll SHA-256 — the
//! conventional choice for content-addressed stores — instead of using
//! `std`'s randomly-keyed `DefaultHasher`. [`KeyBuilder`] feeds
//! length-delimited fields into the hasher so adjacent fields can never
//! alias (`("ab", "c")` ≠ `("a", "bc")`).

use crate::codec::{Codec, CodecError, Dec, Enc};

/// A 256-bit content hash identifying one artifact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Lower-case hex rendering (64 chars) — used as the on-disk file stem.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Hashes a single byte string.
    pub fn of_bytes(bytes: &[u8]) -> ContentHash {
        let mut h = Sha256::new();
        h.update(bytes);
        ContentHash(h.finish())
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({})", &self.to_hex()[..12])
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl Codec for ContentHash {
    fn encode(&self, e: &mut Enc) {
        e.raw(&self.0);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let b = d.raw(32)?;
        Ok(ContentHash(b.try_into().expect("32 bytes")))
    }
}

/// Incremental builder of a [`ContentHash`] from typed, length-delimited
/// fields. Construct with a domain string naming the keyed stage so keys of
/// different stages can never collide even on identical inputs.
#[derive(Debug)]
pub struct KeyBuilder {
    hasher: Sha256,
}

impl KeyBuilder {
    /// Starts a key in the given domain (e.g. `"rtlt.compile.v1"`).
    pub fn new(domain: &str) -> KeyBuilder {
        let mut b = KeyBuilder {
            hasher: Sha256::new(),
        };
        b.field(domain.as_bytes());
        b
    }

    fn field(&mut self, bytes: &[u8]) {
        self.hasher.update(&(bytes.len() as u64).to_le_bytes());
        self.hasher.update(bytes);
    }

    /// Feeds a raw byte field.
    pub fn bytes(mut self, b: &[u8]) -> KeyBuilder {
        self.field(b);
        self
    }

    /// Feeds a string field.
    pub fn str(self, s: &str) -> KeyBuilder {
        self.bytes(s.as_bytes())
    }

    /// Feeds a `u64` field.
    pub fn u64(self, v: u64) -> KeyBuilder {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds an `f64` field by raw bits (bit-exact; distinguishes `-0.0`).
    pub fn f64(self, v: f64) -> KeyBuilder {
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Feeds another key (chains stage keys: `blast = H(compile, …)`).
    pub fn key(self, k: &ContentHash) -> KeyBuilder {
        self.bytes(&k.0)
    }

    /// Feeds any [`Codec`] value through its canonical encoding.
    pub fn codec<T: Codec>(self, v: &T) -> KeyBuilder {
        self.bytes(&v.to_bytes())
    }

    /// Finishes the key.
    pub fn finish(self) -> ContentHash {
        ContentHash(self.hasher.finish())
    }
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4). Straightforward scalar implementation; the store
// hashes kilobytes of Verilog per design, so throughput is irrelevant next
// to synthesis.
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

#[derive(Debug)]
struct Sha256 {
    state: [u32; 8],
    /// Partially filled block.
    block: [u8; 64],
    block_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Sha256 {
    fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            block: [0; 64],
            block_len: 0,
            total: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.block_len > 0 {
            let need = 64 - self.block_len;
            let take = need.min(data.len());
            self.block[self.block_len..self.block_len + take].copy_from_slice(&data[..take]);
            self.block_len += take;
            data = &data[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            }
            if data.is_empty() {
                // The partial block absorbed everything; writing the empty
                // tail below would clobber block_len.
                return;
            }
        }
        while data.len() >= 64 {
            let (head, rest) = data.split_at(64);
            self.compress(head.try_into().expect("64 bytes"));
            data = rest;
        }
        self.block[..data.len()].copy_from_slice(data);
        self.block_len = data.len();
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(c.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.block_len, 0);
        let mut out = [0u8; 32];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 known-answer vectors.
    #[test]
    fn sha256_known_answers() {
        assert_eq!(
            ContentHash::of_bytes(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            ContentHash::of_bytes(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            ContentHash::of_bytes(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        // Feed in awkward chunk sizes to exercise block buffering.
        let chunk = [b'a'; 997];
        let mut fed = 0;
        while fed < 1_000_000 {
            let n = chunk.len().min(1_000_000 - fed);
            h.update(&chunk[..n]);
            fed += n;
        }
        assert_eq!(
            ContentHash(h.finish()).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn key_builder_fields_do_not_alias() {
        let ab_c = KeyBuilder::new("t").str("ab").str("c").finish();
        let a_bc = KeyBuilder::new("t").str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
        // Domain separation.
        assert_ne!(
            KeyBuilder::new("x").str("v").finish(),
            KeyBuilder::new("y").str("v").finish()
        );
        // Determinism.
        assert_eq!(
            KeyBuilder::new("t").u64(7).f64(1.5).finish(),
            KeyBuilder::new("t").u64(7).f64(1.5).finish()
        );
    }

    #[test]
    fn content_hash_codec_and_hex() {
        let k = ContentHash::of_bytes(b"xyz");
        assert_eq!(k.to_hex().len(), 64);
        let back = ContentHash::from_bytes(&k.to_bytes()).unwrap();
        assert_eq!(back, k);
    }
}
