//! The composable tier stack behind [`crate::Store`].
//!
//! A [`StoreTier`] is one byte-oriented cache level: it stores and serves
//! payload bytes under `(namespace, key)`, owning its envelope (the disk
//! tier wraps payloads in the checksummed [`crate::entry`] format, the
//! remote tier ships them as wire frames, the memory tier keeps them bare).
//! Since format v3 the payload every tier carries is a [`crate::compress`]
//! *frame* (mode-tagged, possibly compressed) rather than bare codec bytes;
//! tiers stay byte-opaque — [`crate::Store`] compresses once on write and
//! decompresses once on read, and checksums cover the compressed form.
//! [`crate::Store`] walks its tiers front to back on a lookup, populates
//! earlier tiers from a later hit (read-through) and writes every tier on a
//! put (write-back), then decodes the payload once into its typed front
//! cache — so stacking a new tier (e.g. [`crate::RemoteTier`]) changes no
//! call site anywhere in the pipeline.
//!
//! Tier failures are never errors: a tier that cannot serve a key reports a
//! miss ([`TierLookup::Miss`]) and the computation simply runs.

use crate::codec::FORMAT_VERSION;
use crate::compress;
use crate::entry::{decode_entry_versioned, encode_entry};
use crate::hash::ContentHash;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which level of the storage hierarchy a tier lives on — the unit of the
/// per-tier hit accounting in [`crate::NamespaceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierKind {
    /// In-process byte cache.
    Memory,
    /// Local filesystem.
    Disk,
    /// Shared artifact service over the network.
    Remote,
}

impl TierKind {
    /// Short lowercase label for reports (`mem`/`disk`/`remote`).
    pub fn label(self) -> &'static str {
        match self {
            TierKind::Memory => "mem",
            TierKind::Disk => "disk",
            TierKind::Remote => "remote",
        }
    }
}

/// Outcome of one tier lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierLookup {
    /// The tier holds the key; payload bytes attached.
    Hit(Vec<u8>),
    /// The tier does not hold the key (including "tier unreachable" — a
    /// dead remote degrades to misses, never to errors).
    Miss,
    /// The tier held something under the key but it failed validation and
    /// was discarded.
    Corrupt,
}

/// Point-in-time size snapshot of one tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStats {
    /// The tier's level.
    pub kind: TierKind,
    /// Human-readable location (directory, address, or budget).
    pub detail: String,
    /// Entries currently held (0 for an unreachable remote).
    pub entries: u64,
    /// Bytes currently held.
    pub bytes: u64,
    /// Whether the tier answered the size probe (a dead remote reports
    /// `false` instead of failing).
    pub reachable: bool,
}

/// Outcome of one tier [`StoreTier::gc`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entry files found before eviction.
    pub scanned_files: u64,
    /// Total bytes found before eviction.
    pub scanned_bytes: u64,
    /// Files evicted (oldest mtime first).
    pub evicted_files: u64,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Bytes remaining after eviction.
    pub remaining_bytes: u64,
}

impl GcReport {
    /// Accumulates another report (for stacks gc'ing several tiers).
    pub fn absorb(&mut self, other: GcReport) {
        self.scanned_files += other.scanned_files;
        self.scanned_bytes += other.scanned_bytes;
        self.evicted_files += other.evicted_files;
        self.evicted_bytes += other.evicted_bytes;
        self.remaining_bytes += other.remaining_bytes;
    }
}

/// Outcome of merging one disk tier directory into another
/// ([`crate::Store::merge_disk_tier`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Valid entries copied into the destination.
    pub merged_files: u64,
    /// Bytes copied.
    pub merged_bytes: u64,
    /// Entries skipped because the destination already holds the key
    /// (content-addressed: same key ⇒ same bytes).
    pub skipped_existing: u64,
    /// Source files that failed entry validation and were not copied.
    pub invalid_entries: u64,
}

/// How one namespace's payloads are coded in the byte tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadCoding {
    /// Compressed frames ([`crate::compress::compress`]): fewer bytes on
    /// disk and over the wire, at the cost of one encode per write and one
    /// decode per cold read.
    Packed,
    /// Raw frames: the payload verbatim behind the 1-byte mode tag. Right
    /// for tiny, hot namespaces where the decode would cost more than the
    /// bytes save.
    Raw,
}

impl PayloadCoding {
    /// Short lowercase label (`packed`/`raw`), matching the
    /// `RTLT_TIER_POLICY` syntax.
    pub fn label(self) -> &'static str {
        match self {
            PayloadCoding::Packed => "packed",
            PayloadCoding::Raw => "raw",
        }
    }
}

/// Default decoded-front-cache quota for the bulk `featurize` namespace:
/// big enough to keep the active design's tables decoded, small enough
/// that 21 designs of shards do not crowd out the hot tiny namespaces.
pub const FEATURIZE_MEM_QUOTA: usize = 64 << 20;

/// Default decoded-front-cache quota for the `conesta` namespace
/// (seed-independent shared cone evaluations). The entries are read many
/// times during one design's featurize (once per signal sharing the cone)
/// but rarely after, so they get a bounded decoded-cache share rather than
/// crowding out the hot tiny namespaces.
pub const CONESTA_MEM_QUOTA: usize = 32 << 20;

/// Per-namespace tier policy: which namespaces get compressed payloads and
/// which get a bounded share of the decoded front cache.
///
/// The default is the production shape of the prepare pipeline: bulk
/// `featurize` tables are packed and capped to [`FEATURIZE_MEM_QUOTA`] of
/// decoded cache (cheap to re-read from compressed disk), tiny hot
/// `modast`/`compile` artifacts stay raw and uncapped, and every other
/// namespace is packed with no quota. Overridable via the
/// `RTLT_TIER_POLICY` environment knob, parsed by [`TierPolicy::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierPolicy {
    default_coding: PayloadCoding,
    default_quota: Option<usize>,
    per_ns: BTreeMap<String, (PayloadCoding, Option<usize>)>,
}

impl Default for TierPolicy {
    fn default() -> TierPolicy {
        let mut per_ns = BTreeMap::new();
        per_ns.insert(
            "featurize".to_owned(),
            (PayloadCoding::Packed, Some(FEATURIZE_MEM_QUOTA)),
        );
        per_ns.insert("modast".to_owned(), (PayloadCoding::Raw, None));
        per_ns.insert("compile".to_owned(), (PayloadCoding::Raw, None));
        per_ns.insert(
            "conesta".to_owned(),
            (PayloadCoding::Packed, Some(CONESTA_MEM_QUOTA)),
        );
        TierPolicy {
            default_coding: PayloadCoding::Packed,
            default_quota: None,
            per_ns,
        }
    }
}

impl TierPolicy {
    /// Parses an `RTLT_TIER_POLICY` spec: comma-separated
    /// `ns=packed|raw[:mem=BYTES]` entries applied on top of the default
    /// policy, in order. `BYTES` takes an optional `k`/`m`/`g` suffix. The
    /// namespace `*` sets the default coding/quota and clears every
    /// per-namespace override accumulated so far — so `*=raw` alone means
    /// "everything raw, everywhere".
    pub fn parse(spec: &str) -> Result<TierPolicy, String> {
        let mut policy = TierPolicy::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (ns, rest) = part
                .split_once('=')
                .ok_or_else(|| format!("'{part}': expected ns=packed|raw[:mem=BYTES]"))?;
            let (coding_str, quota_str) = match rest.split_once(':') {
                Some((c, q)) => (c, Some(q)),
                None => (rest, None),
            };
            let coding = match coding_str {
                "packed" => PayloadCoding::Packed,
                "raw" => PayloadCoding::Raw,
                other => return Err(format!("'{part}': unknown coding '{other}' (packed|raw)")),
            };
            let quota = match quota_str {
                None => None,
                Some(q) => {
                    let v = q
                        .strip_prefix("mem=")
                        .ok_or_else(|| format!("'{part}': expected mem=BYTES after ':'"))?;
                    Some(
                        parse_byte_size(v)
                            .ok_or_else(|| format!("'{part}': bad byte size '{v}'"))?,
                    )
                }
            };
            if ns == "*" {
                policy.default_coding = coding;
                policy.default_quota = quota;
                policy.per_ns.clear();
            } else {
                policy.per_ns.insert(ns.to_owned(), (coding, quota));
            }
        }
        Ok(policy)
    }

    /// Whether `ns` payloads should be compressed in the byte tiers.
    pub fn packed(&self, ns: &str) -> bool {
        self.per_ns
            .get(ns)
            .map(|(c, _)| *c)
            .unwrap_or(self.default_coding)
            == PayloadCoding::Packed
    }

    /// The decoded-front-cache byte quota for `ns`, if it is capped.
    pub fn mem_quota(&self, ns: &str) -> Option<usize> {
        self.per_ns
            .get(ns)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota)
    }

    /// One-line summary for reports, in `RTLT_TIER_POLICY` syntax (the
    /// `*` default leads, so the string re-parses to the same policy).
    pub fn describe(&self) -> String {
        let entry = |ns: &str, c: PayloadCoding, q: Option<usize>| match q {
            Some(q) => format!("{ns}={}:mem={}k", c.label(), q / 1024),
            None => format!("{ns}={}", c.label()),
        };
        let mut parts = vec![entry("*", self.default_coding, self.default_quota)];
        parts.extend(self.per_ns.iter().map(|(ns, (c, q))| entry(ns, *c, *q)));
        parts.join(",")
    }
}

/// Parses `N`, `Nk`, `Nm`, or `Ng` (case-insensitive suffix) into bytes.
fn parse_byte_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1usize << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<usize>().ok()?.checked_mul(mult)
}

/// One byte-oriented cache level of a [`crate::Store`] stack.
pub trait StoreTier: Send + Sync + std::fmt::Debug {
    /// The tier's level in the storage hierarchy.
    fn kind(&self) -> TierKind;

    /// Looks up the payload stored under `(ns, key)`.
    fn get_bytes(&self, ns: &str, key: ContentHash) -> TierLookup;

    /// Looks up a whole `(ns, key)` set. The default loops over
    /// [`StoreTier::get_bytes`]; tiers with per-lookup latency (the remote
    /// tier) override this to pipeline the batch in one round trip.
    fn get_bytes_batch(&self, items: &[(String, ContentHash)]) -> Vec<TierLookup> {
        items
            .iter()
            .map(|(ns, key)| self.get_bytes(ns, *key))
            .collect()
    }

    /// Whether the tier currently holds `(ns, key)` — a cheap existence
    /// probe (no payload read, no recency touch) used to decide what a
    /// batched prefetch still needs. The default reads the payload;
    /// local tiers override it with a constant-time check.
    fn contains(&self, ns: &str, key: ContentHash) -> bool {
        matches!(self.get_bytes(ns, key), TierLookup::Hit(_))
    }

    /// Stores `payload` under `(ns, key)`. Best-effort: a full disk or a
    /// dead server must not fail the computation being memoized.
    fn put_bytes(&self, ns: &str, key: ContentHash, payload: &[u8]);

    /// Drops the entry under `(ns, key)` if present — called by the store
    /// when a payload that validated at the tier level fails typed
    /// decoding, so the slot heals on the next write.
    fn remove(&self, ns: &str, key: ContentHash) {
        let _ = (ns, key);
    }

    /// Current size snapshot.
    fn stats(&self) -> TierStats;

    /// Evicts entries until at most `budget_bytes` remain (LRU where the
    /// tier can track recency).
    fn gc(&self, budget_bytes: u64) -> GcReport;

    /// Blocks until every buffered best-effort write has been pushed to
    /// durable custody (acknowledged by the server, for a pipelined
    /// remote tier). Local tiers write synchronously and have nothing to
    /// flush.
    fn flush(&self) {}

    /// Cumulative wire round trips (write→read turnarounds) this tier has
    /// paid — nonzero only for networked tiers. Monotonic; callers sample
    /// deltas to attribute turnarounds to operations.
    fn round_trips(&self) -> u64 {
        0
    }

    /// The on-disk root, for tiers that persist to a local directory.
    fn disk_root(&self) -> Option<&Path> {
        None
    }
}

// ---------------------------------------------------------------------------
// Memory tier: byte-LRU.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemInner {
    entries: HashMap<(String, ContentHash), (Vec<u8>, u64)>,
    total_bytes: usize,
    tick: u64,
}

/// Byte-budgeted LRU memory tier holding raw payload bytes.
///
/// This is the tier the [`crate::server`] stacks in front of its disk tier
/// (the server never decodes payloads, so bytes are the natural resident
/// form). [`crate::Store`] itself fronts its stack with a *decoded* cache
/// instead — see the crate docs — but accepts a `MemTier` in a custom
/// stack.
#[derive(Debug)]
pub struct MemTier {
    inner: Mutex<MemInner>,
    budget: usize,
}

impl MemTier {
    /// Memory tier with the given byte budget.
    pub fn new(budget: usize) -> MemTier {
        MemTier {
            inner: Mutex::new(MemInner::default()),
            budget,
        }
    }

    fn evict_to(inner: &mut MemInner, budget: usize) -> (u64, u64) {
        let mut files = 0;
        let mut bytes = 0;
        while inner.total_bytes > budget {
            let lru = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    let (payload, _) = inner.entries.remove(&k).expect("lru entry");
                    inner.total_bytes -= payload.len();
                    files += 1;
                    bytes += payload.len() as u64;
                }
                None => break,
            }
        }
        (files, bytes)
    }
}

impl StoreTier for MemTier {
    fn kind(&self) -> TierKind {
        TierKind::Memory
    }

    fn get_bytes(&self, ns: &str, key: ContentHash) -> TierLookup {
        let mut inner = self.inner.lock().expect("mem tier lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&(ns.to_owned(), key)) {
            Some((payload, used)) => {
                *used = tick;
                TierLookup::Hit(payload.clone())
            }
            None => TierLookup::Miss,
        }
    }

    fn put_bytes(&self, ns: &str, key: ContentHash, payload: &[u8]) {
        if payload.len() > self.budget {
            return;
        }
        let mut inner = self.inner.lock().expect("mem tier lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((old, _)) = inner
            .entries
            .insert((ns.to_owned(), key), (payload.to_vec(), tick))
        {
            inner.total_bytes -= old.len();
        }
        inner.total_bytes += payload.len();
        Self::evict_to(&mut inner, self.budget);
    }

    fn contains(&self, ns: &str, key: ContentHash) -> bool {
        // No LRU touch: an existence probe must not distort recency.
        self.inner
            .lock()
            .expect("mem tier lock")
            .entries
            .contains_key(&(ns.to_owned(), key))
    }

    fn remove(&self, ns: &str, key: ContentHash) {
        let mut inner = self.inner.lock().expect("mem tier lock");
        if let Some((old, _)) = inner.entries.remove(&(ns.to_owned(), key)) {
            inner.total_bytes -= old.len();
        }
    }

    fn stats(&self) -> TierStats {
        let inner = self.inner.lock().expect("mem tier lock");
        TierStats {
            kind: TierKind::Memory,
            detail: format!("budget {} KiB", self.budget / 1024),
            entries: inner.entries.len() as u64,
            bytes: inner.total_bytes as u64,
            reachable: true,
        }
    }

    fn gc(&self, budget_bytes: u64) -> GcReport {
        let mut inner = self.inner.lock().expect("mem tier lock");
        let scanned_files = inner.entries.len() as u64;
        let scanned_bytes = inner.total_bytes as u64;
        let budget = usize::try_from(budget_bytes).unwrap_or(usize::MAX);
        let (evicted_files, evicted_bytes) = Self::evict_to(&mut inner, budget);
        GcReport {
            scanned_files,
            scanned_bytes,
            evicted_files,
            evicted_bytes,
            remaining_bytes: inner.total_bytes as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Disk tier: checksummed entry files, atomic writes.
// ---------------------------------------------------------------------------

/// On-disk tier of checksummed entries under `<dir>/<ns>/<key>.bin`.
///
/// Writes are durable-atomic: the entry is written to a temp file, fsynced,
/// then renamed over the final path — a crash mid-write leaves either the
/// old entry or none, never a torn one. Reads touch the entry's mtime so
/// [`StoreTier::gc`]'s LRU order reflects access recency.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
}

/// Process-global temp-name counter: several `DiskTier` instances may
/// share one root (store + merge), so uniqueness must not be per-instance.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl DiskTier {
    /// Disk tier rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> DiskTier {
        DiskTier { dir: dir.into() }
    }

    /// The tier's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, ns: &str, key: ContentHash) -> PathBuf {
        self.dir.join(ns).join(format!("{}.bin", key.to_hex()))
    }

    /// Atomically writes pre-framed entry bytes to `<ns>/<file_name>`:
    /// temp file + fsync + rename. Returns whether the entry landed.
    fn write_entry_file(&self, ns: &str, file_name: &str, bytes: &[u8]) -> bool {
        let ns_dir = self.dir.join(ns);
        if std::fs::create_dir_all(&ns_dir).is_err() {
            return false;
        }
        let tmp = ns_dir.join(format!(
            "{}.tmp.{}.{}",
            file_name,
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        // fsync before the rename: without it a crash can publish the new
        // name pointing at un-flushed (possibly zero-length) data, which
        // only the checksum path would catch later.
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| {
                f.write_all(bytes)?;
                f.sync_all()
            })
            .is_ok();
        if !written || std::fs::rename(&tmp, ns_dir.join(file_name)).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// Sizes by namespace: `(namespace, files, bytes)`, sorted.
    pub fn usage(&self) -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        for ns in entries.flatten() {
            if !ns.path().is_dir() {
                continue;
            }
            let name = ns.file_name().to_string_lossy().into_owned();
            let mut files = 0u64;
            let mut bytes = 0u64;
            if let Ok(items) = std::fs::read_dir(ns.path()) {
                for f in items.flatten() {
                    if let Ok(meta) = f.metadata() {
                        if meta.is_file() {
                            files += 1;
                            bytes += meta.len();
                        }
                    }
                }
            }
            out.push((name, files, bytes));
        }
        out.sort();
        out
    }

    /// Sizes by namespace with both stored (on-disk entry file) and decoded
    /// (post-decompression payload) bytes: `(namespace, files, stored,
    /// decoded)`, sorted. Reads every entry to peek its frame header — a
    /// reporting path, not a hot path.
    pub fn usage_decoded(&self) -> Vec<(String, u64, u64, u64)> {
        let mut out = Vec::new();
        let Ok(namespaces) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        for ns in namespaces.flatten() {
            if !ns.path().is_dir() {
                continue;
            }
            let name = ns.file_name().to_string_lossy().into_owned();
            let (mut files, mut stored, mut decoded) = (0u64, 0u64, 0u64);
            if let Ok(items) = std::fs::read_dir(ns.path()) {
                for f in items.flatten() {
                    let Ok(bytes) = std::fs::read(f.path()) else {
                        continue;
                    };
                    let Some((version, payload)) = decode_entry_versioned(&bytes) else {
                        continue;
                    };
                    files += 1;
                    stored += bytes.len() as u64;
                    decoded += if version == FORMAT_VERSION {
                        compress::decoded_len(payload).unwrap_or(payload.len() as u64)
                    } else {
                        payload.len() as u64
                    };
                }
            }
            out.push((name, files, stored, decoded));
        }
        out.sort();
        out
    }

    /// Merges every valid entry under `src` (another disk tier's root) into
    /// this tier. Entries failing envelope validation are skipped and
    /// counted; keys already present here are skipped (content-addressed:
    /// same key ⇒ same bytes). This is how N fleet shards assemble one warm
    /// cache.
    pub fn merge_from(&self, src: &Path) -> MergeReport {
        let mut report = MergeReport::default();
        let Ok(namespaces) = std::fs::read_dir(src) else {
            return report;
        };
        for ns in namespaces.flatten() {
            if !ns.path().is_dir() {
                continue;
            }
            let ns_name = ns.file_name().to_string_lossy().into_owned();
            let Ok(items) = std::fs::read_dir(ns.path()) else {
                continue;
            };
            for f in items.flatten() {
                let path = f.path();
                if !path.is_file() || path.extension().is_none_or(|x| x != "bin") {
                    continue;
                }
                let Some(file_name) = path.file_name().map(|n| n.to_string_lossy().into_owned())
                else {
                    continue;
                };
                if self.dir.join(&ns_name).join(&file_name).exists() {
                    report.skipped_existing += 1;
                    continue;
                }
                let Ok(bytes) = std::fs::read(&path) else {
                    report.invalid_entries += 1;
                    continue;
                };
                if decode_entry_versioned(&bytes).is_none() {
                    report.invalid_entries += 1;
                    continue;
                }
                if self.write_entry_file(&ns_name, &file_name, &bytes) {
                    report.merged_files += 1;
                    report.merged_bytes += bytes.len() as u64;
                }
            }
        }
        report
    }
}

impl StoreTier for DiskTier {
    fn kind(&self) -> TierKind {
        TierKind::Disk
    }

    fn get_bytes(&self, ns: &str, key: ContentHash) -> TierLookup {
        let path = self.entry_path(ns, key);
        let Ok(bytes) = std::fs::read(&path) else {
            return TierLookup::Miss;
        };
        match decode_entry_versioned(&bytes) {
            Some((version, payload)) => {
                // Touch the entry so gc's LRU-by-mtime order reflects
                // access recency, not just write time.
                let _ = std::fs::File::options()
                    .append(true)
                    .open(&path)
                    .and_then(|f| {
                        f.set_times(
                            std::fs::FileTimes::new().set_modified(std::time::SystemTime::now()),
                        )
                    });
                if version == FORMAT_VERSION {
                    TierLookup::Hit(payload.to_vec())
                } else {
                    // A pre-compression (v2) entry carries bare codec bytes;
                    // lift them into the frame space so every tier read
                    // yields a compress frame. The file itself stays v2 on
                    // disk until something rewrites the slot.
                    TierLookup::Hit(compress::raw_frame(payload))
                }
            }
            None => {
                // Corrupted/truncated/stale entry: drop it so the slot is
                // rewritten by the recompute. Never an error — just a miss.
                let _ = std::fs::remove_file(&path);
                TierLookup::Corrupt
            }
        }
    }

    fn put_bytes(&self, ns: &str, key: ContentHash, payload: &[u8]) {
        let bytes = encode_entry(payload);
        self.write_entry_file(ns, &format!("{}.bin", key.to_hex()), &bytes);
    }

    fn contains(&self, ns: &str, key: ContentHash) -> bool {
        // Existence only — a later real get still validates the entry, so
        // a corrupt file at worst costs one skipped prefetch.
        self.entry_path(ns, key).exists()
    }

    fn remove(&self, ns: &str, key: ContentHash) {
        let _ = std::fs::remove_file(self.entry_path(ns, key));
    }

    fn stats(&self) -> TierStats {
        let usage = self.usage();
        TierStats {
            kind: TierKind::Disk,
            detail: self.dir.display().to_string(),
            entries: usage.iter().map(|(_, f, _)| f).sum(),
            bytes: usage.iter().map(|(_, _, b)| b).sum(),
            reachable: true,
        }
    }

    fn gc(&self, budget_bytes: u64) -> GcReport {
        let mut report = GcReport::default();
        // (mtime, size, path) of every entry file.
        let mut entries: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        let Ok(namespaces) = std::fs::read_dir(&self.dir) else {
            return report;
        };
        for ns in namespaces.flatten() {
            if !ns.path().is_dir() {
                continue;
            }
            if let Ok(items) = std::fs::read_dir(ns.path()) {
                for f in items.flatten() {
                    if let Ok(meta) = f.metadata() {
                        if meta.is_file() {
                            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                            entries.push((mtime, meta.len(), f.path()));
                        }
                    }
                }
            }
        }
        report.scanned_files = entries.len() as u64;
        report.scanned_bytes = entries.iter().map(|(_, s, _)| s).sum();
        let mut remaining = report.scanned_bytes;
        entries.sort();
        for (_, size, path) in entries {
            if remaining <= budget_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                remaining -= size;
                report.evicted_files += 1;
                report.evicted_bytes += size;
            }
        }
        report.remaining_bytes = remaining;
        report
    }

    fn disk_root(&self) -> Option<&Path> {
        Some(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;

    fn key(n: u64) -> ContentHash {
        KeyBuilder::new("tier-test").u64(n).finish()
    }

    #[test]
    fn mem_tier_round_trip_and_lru() {
        let tier = MemTier::new(64);
        assert_eq!(tier.get_bytes("ns", key(1)), TierLookup::Miss);
        tier.put_bytes("ns", key(1), &[1; 30]);
        tier.put_bytes("ns", key(2), &[2; 30]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(matches!(tier.get_bytes("ns", key(1)), TierLookup::Hit(_)));
        tier.put_bytes("ns", key(3), &[3; 30]);
        assert_eq!(tier.get_bytes("ns", key(2)), TierLookup::Miss);
        assert!(matches!(tier.get_bytes("ns", key(1)), TierLookup::Hit(_)));
        let s = tier.stats();
        assert_eq!(s.kind, TierKind::Memory);
        assert!(s.bytes <= 64);
        // Oversized payloads are not retained.
        tier.put_bytes("ns", key(9), &[0; 1000]);
        assert_eq!(tier.get_bytes("ns", key(9)), TierLookup::Miss);
    }

    #[test]
    fn mem_tier_gc_and_remove() {
        let tier = MemTier::new(1 << 20);
        tier.put_bytes("a", key(1), &[0; 100]);
        tier.put_bytes("b", key(2), &[0; 100]);
        tier.remove("a", key(1));
        assert_eq!(tier.get_bytes("a", key(1)), TierLookup::Miss);
        let r = tier.gc(0);
        assert_eq!(r.scanned_files, 1);
        assert_eq!(r.evicted_files, 1);
        assert_eq!(r.remaining_bytes, 0);
    }

    #[test]
    fn tier_kind_labels() {
        assert_eq!(TierKind::Memory.label(), "mem");
        assert_eq!(TierKind::Disk.label(), "disk");
        assert_eq!(TierKind::Remote.label(), "remote");
    }

    #[test]
    fn tier_policy_defaults_and_parse() {
        let p = TierPolicy::default();
        assert!(p.packed("featurize"));
        assert_eq!(p.mem_quota("featurize"), Some(FEATURIZE_MEM_QUOTA));
        assert!(!p.packed("modast"));
        assert!(!p.packed("compile"));
        assert_eq!(p.mem_quota("compile"), None);
        assert!(p.packed("conesta"));
        assert_eq!(p.mem_quota("conesta"), Some(CONESTA_MEM_QUOTA));
        assert!(p.packed("blast"), "unlisted namespaces take the default");

        // Overrides stack on the default policy, in order.
        let p = TierPolicy::parse("featurize=raw,blast=packed:mem=1m").expect("parse");
        assert!(!p.packed("featurize"));
        assert_eq!(p.mem_quota("featurize"), None);
        assert_eq!(p.mem_quota("blast"), Some(1 << 20));
        assert!(!p.packed("modast"), "default overrides survive");

        // `*` resets the default and clears every per-ns override.
        let p = TierPolicy::parse("*=raw").expect("parse");
        assert!(!p.packed("featurize"));
        assert!(!p.packed("anything"));
        assert_eq!(p.mem_quota("featurize"), None);

        // Byte-size suffixes.
        let p = TierPolicy::parse("shard=packed:mem=512k").expect("parse");
        assert_eq!(p.mem_quota("shard"), Some(512 << 10));

        // Malformed specs are errors, not silent defaults.
        assert!(TierPolicy::parse("featurize").is_err());
        assert!(TierPolicy::parse("featurize=zip").is_err());
        assert!(TierPolicy::parse("featurize=packed:mem=ten").is_err());
        assert!(TierPolicy::parse("featurize=packed:budget=1m").is_err());

        // The description round-trips through the parser.
        let p = TierPolicy::parse("featurize=packed:mem=2m").expect("parse");
        assert_eq!(TierPolicy::parse(&p.describe()), Ok(p));
    }

    #[test]
    fn disk_tier_reads_v2_entries_as_raw_frames() {
        let dir = std::env::temp_dir().join(format!("rtlt-tier-v2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tier = DiskTier::new(&dir);

        // Hand-write a v2 entry, as a pre-compression build would have.
        let payload = b"bare v2 codec bytes".to_vec();
        let mut v2 = Vec::new();
        v2.extend_from_slice(&crate::entry::ENTRY_MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v2.extend_from_slice(&payload);
        v2.extend_from_slice(&crate::entry::fnv1a(&payload).to_le_bytes());
        std::fs::create_dir_all(dir.join("ns")).expect("ns dir");
        std::fs::write(dir.join("ns").join(format!("{}.bin", key(1).to_hex())), &v2)
            .expect("write v2 entry");

        // The read lifts the bare payload into a raw compress frame.
        assert_eq!(
            tier.get_bytes("ns", key(1)),
            TierLookup::Hit(compress::raw_frame(&payload))
        );

        // A current-version frame round-trips verbatim, and the decoded
        // usage report tells stored from decoded bytes for both versions.
        let frame = compress::compress(&vec![7u8; 4096]);
        tier.put_bytes("ns", key(2), &frame);
        assert_eq!(tier.get_bytes("ns", key(2)), TierLookup::Hit(frame));
        let usage = tier.usage_decoded();
        assert_eq!(usage.len(), 1);
        let (ns, files, stored, decoded) = &usage[0];
        assert_eq!((ns.as_str(), *files), ("ns", 2));
        assert_eq!(*decoded, payload.len() as u64 + 4096);
        assert!(
            *stored < *decoded,
            "compressible entry should shrink: stored {stored} decoded {decoded}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
