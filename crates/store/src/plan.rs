//! Server-side shard planning: a work queue of design names that
//! `rtlt-stored` hands out to fleet workers dynamically, so suite
//! preparation is bounded by the slowest *artifact* rather than the
//! slowest statically-assigned worker.
//!
//! The planner speaks three verbs over the wire protocol:
//!
//! * **PLAN** — workers submit the design list with expected prepare costs
//!   (seeded from a prior `BENCH_runtime.json` when one exists). Planning
//!   is an idempotent union: every worker submits the same plan, the first
//!   one seeds the queue, later ones add nothing.
//! * **LEASE** — a worker asks for work; the planner grants the pending
//!   design with the **longest expected cost** (ties broken by name, so
//!   grant order is deterministic). Before every grant it re-queues leases
//!   whose worker has gone silent past the lease deadline — that re-queue
//!   is the "steal": a slow or dead worker's design lands on whoever asks
//!   next instead of gating the merge. Grants are **locality-aware**: the
//!   planner remembers which worker last reported each design prepared
//!   (that worker's disk tier holds the design's artifacts), and when one
//!   of a worker's own designs is pending again — a re-plan under a new
//!   epoch, or a re-queued steal that circled back — it is granted before
//!   any non-local design, so warm bytes are read where they already live
//!   instead of crossing the wire from the shared store.
//! * **DONE** (wire op `REPORT`) — the worker reports the observed prepare
//!   time (refining the cost model for later plans on the same server) or
//!   refuses the design (`ok = false`, e.g. a version-skewed worker that
//!   does not know the name). Refused designs re-queue for other workers;
//!   a design every known worker has refused is abandoned rather than
//!   ping-ponging forever (and resurrected if a worker that never refused
//!   it joins later).
//!
//! Completion is idempotent: when a stolen design is later also finished
//! by the original (slow) worker, the second report is a no-op — artifacts
//! are content-addressed, so double preparation wastes time but can never
//! change bytes.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default lease deadline: a worker silent on a design for this long is
/// presumed slow or dead and the design becomes stealable.
pub const DEFAULT_LEASE_TIMEOUT: Duration = Duration::from_secs(120);

/// Point-in-time counters of one [`Planner`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Designs ever planned.
    pub planned: u64,
    /// Designs reported prepared.
    pub completed: u64,
    /// Designs refused by every known worker and dropped from the queue.
    pub abandoned: u64,
    /// Leases currently held (deadline not yet expired).
    pub active_leases: u64,
    /// Leases ever granted (≥ `completed`: re-leases count again).
    pub leases_granted: u64,
    /// Leases re-queued past their deadline — the "stolen" designs.
    pub requeued: u64,
    /// Leases a worker handed back as unservable.
    pub refused: u64,
    /// Distinct workers ever seen.
    pub workers: u64,
}

impl PlanStats {
    /// Designs neither completed nor abandoned.
    pub fn outstanding(&self) -> u64 {
        self.planned - self.completed - self.abandoned
    }
}

/// Outcome of one lease request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseGrant {
    /// Work: prepare this design, then report.
    Granted {
        /// The leased design name.
        design: String,
    },
    /// Nothing leasable for this worker right now. `outstanding == 0`
    /// means the plan is fully done; `> 0` means poll again — another
    /// worker's lease may expire and re-queue.
    Drained {
        /// Designs neither completed nor abandoned.
        outstanding: u64,
    },
}

#[derive(Debug, Default)]
struct PlanInner {
    /// Content epoch of the current plan (`None` before any PLAN). A plan
    /// arriving with a different epoch is a *new run* — completion memory
    /// resets (observed costs survive: design names are stable across
    /// edits and remain useful priors).
    epoch: Option<u64>,
    /// Designs waiting to be leased.
    pending: Vec<String>,
    /// Expected prepare cost per design (priors, refined by observations).
    costs: HashMap<String, f64>,
    /// Which worker last reported each design prepared — its disk tier
    /// holds the design's artifacts, so re-granting it the same design is
    /// the locality-preserving choice. Survives epoch resets alongside
    /// `costs` (design names and worker caches outlive one run).
    holders: HashMap<String, String>,
    /// Active leases: design → (worker, granted-at).
    leases: HashMap<String, (String, Instant)>,
    completed: HashSet<String>,
    abandoned: HashSet<String>,
    known: HashSet<String>,
    workers: HashSet<String>,
    /// Last time each worker spoke to the planner (lease or report) —
    /// the recency that decides who counts toward a unanimous refusal.
    last_seen: HashMap<String, Instant>,
    /// `(design, worker)` pairs the worker handed back as unservable —
    /// never re-granted to the same worker.
    refusals: HashSet<(String, String)>,
    leases_granted: u64,
    requeued: u64,
    refused: u64,
}

impl PlanInner {
    /// Re-queues every lease whose deadline has passed.
    fn expire(&mut self, now: Instant, timeout: Duration) {
        let expired: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, (_, at))| now.duration_since(*at) >= timeout)
            .map(|(design, _)| design.clone())
            .collect();
        for design in expired {
            self.leases.remove(&design);
            if !self.completed.contains(&design) && !self.abandoned.contains(&design) {
                self.pending.push(design);
                self.requeued += 1;
            }
        }
    }

    /// Returns abandoned designs this worker has *not* refused to the
    /// queue — a worker arriving after a design was unanimously refused
    /// by the fleet-so-far may still be able to serve it.
    fn resurrect_for(&mut self, worker: &str) {
        let revivable: Vec<String> = self
            .abandoned
            .iter()
            .filter(|d| !self.refusals.contains(&((*d).clone(), worker.to_owned())))
            .cloned()
            .collect();
        for design in revivable {
            self.abandoned.remove(&design);
            self.pending.push(design);
        }
    }

    /// Drops pending designs every *active* worker has refused. A worker
    /// counts as active when it spoke to the planner within the lease
    /// timeout — a registered-but-dead worker must not veto abandonment
    /// forever, or a version-skewed survivor would poll an unservable
    /// design until the end of time. When no worker qualifies as active
    /// (degenerate timeouts), the full known set decides, preserving the
    /// original unanimity rule.
    fn abandon_unservable(&mut self, now: Instant, timeout: Duration) {
        if self.workers.is_empty() {
            return;
        }
        let active: Vec<&String> = self
            .workers
            .iter()
            .filter(|w| {
                self.last_seen
                    .get(*w)
                    .is_some_and(|at| now.duration_since(*at) <= timeout)
            })
            .collect();
        let voters: Vec<&String> = if active.is_empty() {
            self.workers.iter().collect()
        } else {
            active
        };
        let unservable: Vec<String> = self
            .pending
            .iter()
            .filter(|design| {
                voters
                    .iter()
                    .all(|w| self.refusals.contains(&((*design).clone(), (*w).clone())))
            })
            .cloned()
            .collect();
        for design in unservable {
            self.pending.retain(|d| d != &design);
            self.abandoned.insert(design);
        }
    }

    fn stats(&self) -> PlanStats {
        PlanStats {
            planned: self.known.len() as u64,
            completed: self.completed.len() as u64,
            abandoned: self.abandoned.len() as u64,
            active_leases: self.leases.len() as u64,
            leases_granted: self.leases_granted,
            requeued: self.requeued,
            refused: self.refused,
            workers: self.workers.len() as u64,
        }
    }
}

/// The server-held work-stealing shard planner. Thread-safe; one lives
/// inside every `ArtifactServer`.
///
/// No background threads: expiry is checked lazily on every lease and
/// stats request, which is exactly when an expired lease could matter.
#[derive(Debug)]
pub struct Planner {
    inner: Mutex<PlanInner>,
    lease_timeout: Duration,
}

impl Default for Planner {
    fn default() -> Planner {
        Planner::new(DEFAULT_LEASE_TIMEOUT)
    }
}

impl Planner {
    /// Planner whose leases expire after `lease_timeout`.
    pub fn new(lease_timeout: Duration) -> Planner {
        Planner {
            inner: Mutex::new(PlanInner::default()),
            lease_timeout,
        }
    }

    /// The configured lease deadline.
    pub fn lease_timeout(&self) -> Duration {
        self.lease_timeout
    }

    /// Adds every design not yet known to the queue (idempotent union
    /// *within* one epoch). Cost priors only apply to designs this call
    /// introduces — observed completion times from earlier work are never
    /// overwritten by a later worker's stale priors. A `epoch` different
    /// from the current one starts a fresh run: pending/known/completed/
    /// lease/refusal state resets (a long-lived server must not answer a
    /// post-edit fleet with "already done"), while observed costs are kept
    /// as priors — design names are stable across edits. Returns how many
    /// designs were new.
    pub fn plan(&self, epoch: u64, designs: &[(String, f64)]) -> u64 {
        let mut inner = self.inner.lock().expect("planner lock");
        if inner.epoch != Some(epoch) {
            let costs = std::mem::take(&mut inner.costs);
            let holders = std::mem::take(&mut inner.holders);
            *inner = PlanInner {
                epoch: Some(epoch),
                costs,
                holders,
                ..PlanInner::default()
            };
        }
        let mut added = 0;
        for (name, cost) in designs {
            if inner.known.insert(name.clone()) {
                inner.pending.push(name.clone());
                inner.costs.entry(name.clone()).or_insert(*cost);
                added += 1;
            }
        }
        added
    }

    /// Grants `worker` a pending design, after re-queueing expired leases.
    /// Designs this worker prepared before (its disk tier holds their
    /// artifacts) are preferred; within either group, longest expected
    /// cost first with deterministic name tie-breaks.
    pub fn lease(&self, worker: &str) -> LeaseGrant {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("planner lock");
        inner.workers.insert(worker.to_owned());
        inner.last_seen.insert(worker.to_owned(), now);
        inner.expire(now, self.lease_timeout);
        inner.resurrect_for(worker);
        inner.abandon_unservable(now, self.lease_timeout);
        let by_cost = |a: &&String, b: &&String| {
            let ca = inner.costs.get(*a).copied().unwrap_or(0.0);
            let cb = inner.costs.get(*b).copied().unwrap_or(0.0);
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        };
        let grantable = || {
            inner
                .pending
                .iter()
                .filter(|d| !inner.refusals.contains(&((*d).clone(), worker.to_owned())))
        };
        let pick = grantable()
            .filter(|d| inner.holders.get(*d).is_some_and(|h| h == worker))
            .max_by(by_cost)
            .or_else(|| grantable().max_by(by_cost))
            .cloned();
        match pick {
            Some(design) => {
                inner.pending.retain(|d| d != &design);
                inner
                    .leases
                    .insert(design.clone(), (worker.to_owned(), Instant::now()));
                inner.leases_granted += 1;
                LeaseGrant::Granted { design }
            }
            None => LeaseGrant::Drained {
                outstanding: inner.stats().outstanding(),
            },
        }
    }

    /// Records a worker's report on a leased design.
    ///
    /// `ok = true` completes the design (idempotently — a late report on a
    /// stolen-and-finished design is a no-op) and records `seconds` as its
    /// observed cost. `ok = false` hands the design back: it re-queues for
    /// other workers and is never re-granted to this one.
    pub fn complete(&self, worker: &str, design: &str, seconds: f64, ok: bool) {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("planner lock");
        inner.workers.insert(worker.to_owned());
        inner.last_seen.insert(worker.to_owned(), now);
        if !inner.known.contains(design) {
            return; // version skew: a design we never planned
        }
        if ok {
            inner.leases.remove(design);
            inner.pending.retain(|d| d != design);
            if inner.completed.insert(design.to_owned()) && seconds.is_finite() && seconds >= 0.0 {
                inner.costs.insert(design.to_owned(), seconds);
            }
            // The reporter's disk tier now holds this design's artifacts;
            // remember it so a later re-queue grants the design back to
            // the worker with the warm cache. Late duplicate reports
            // update this too — both caches are warm, the last reporter
            // is the freshest.
            inner.holders.insert(design.to_owned(), worker.to_owned());
            return;
        }
        inner
            .refusals
            .insert((design.to_owned(), worker.to_owned()));
        inner.refused += 1;
        // Only release the lease if this worker actually holds it — a
        // refusal must not yank a re-leased design from its new owner.
        if inner
            .leases
            .get(design)
            .is_some_and(|(holder, _)| holder == worker)
        {
            inner.leases.remove(design);
            if !inner.completed.contains(design) && !inner.pending.iter().any(|d| d == design) {
                inner.pending.push(design.to_owned());
            }
        }
        inner.abandon_unservable(now, self.lease_timeout);
    }

    /// Current counters (expired leases are re-queued first, so
    /// `active_leases`/`requeued` reflect the deadline).
    pub fn stats(&self) -> PlanStats {
        let mut inner = self.inner.lock().expect("planner lock");
        inner.expire(Instant::now(), self.lease_timeout);
        inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(p: &Planner, names: &[(&str, f64)]) {
        let designs: Vec<(String, f64)> =
            names.iter().map(|(n, c)| ((*n).to_owned(), *c)).collect();
        p.plan(1, &designs);
    }

    fn granted(p: &Planner, worker: &str) -> String {
        match p.lease(worker) {
            LeaseGrant::Granted { design } => design,
            other => panic!("expected a grant, got {other:?}"),
        }
    }

    #[test]
    fn leases_hand_out_longest_expected_first() {
        let p = Planner::default();
        plan_of(&p, &[("small", 1.0), ("big", 9.0), ("mid", 4.0)]);
        assert_eq!(granted(&p, "w1"), "big");
        assert_eq!(granted(&p, "w1"), "mid");
        assert_eq!(granted(&p, "w1"), "small");
        assert_eq!(p.lease("w1"), LeaseGrant::Drained { outstanding: 3 });
        for d in ["big", "mid", "small"] {
            p.complete("w1", d, 0.5, true);
        }
        assert_eq!(p.lease("w1"), LeaseGrant::Drained { outstanding: 0 });
        let s = p.stats();
        assert_eq!((s.planned, s.completed, s.leases_granted), (3, 3, 3));
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn equal_costs_grant_in_deterministic_name_order() {
        let p = Planner::default();
        plan_of(&p, &[("a", 1.0), ("c", 1.0), ("b", 1.0)]);
        // Ties break toward the lexicographically largest name.
        assert_eq!(granted(&p, "w"), "c");
        assert_eq!(granted(&p, "w"), "b");
        assert_eq!(granted(&p, "w"), "a");
    }

    #[test]
    fn planning_is_an_idempotent_union() {
        let p = Planner::default();
        assert_eq!(p.plan(1, &[("x".into(), 2.0)]), 1);
        assert_eq!(p.plan(1, &[("x".into(), 99.0), ("y".into(), 1.0)]), 1);
        assert_eq!(p.stats().planned, 2);
        // x kept its first prior (2.0 > 1.0), so it still leases first.
        assert_eq!(granted(&p, "w"), "x");
    }

    #[test]
    fn expired_leases_are_stolen_by_the_next_asker() {
        // A zero timeout makes every lease instantly stealable — the
        // deterministic form of "the worker went silent past the deadline".
        let p = Planner::new(Duration::ZERO);
        plan_of(&p, &[("d", 5.0)]);
        assert_eq!(granted(&p, "slow"), "d");
        // The silent worker's lease expires; the survivor steals it.
        assert_eq!(granted(&p, "fast"), "d");
        p.complete("fast", "d", 1.0, true);
        let s = p.stats();
        assert_eq!(s.requeued, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.outstanding(), 0);
        // The slow worker's late report is an idempotent no-op.
        p.complete("slow", "d", 99.0, true);
        assert_eq!(p.stats().completed, 1);
    }

    #[test]
    fn unexpired_leases_are_not_stolen() {
        let p = Planner::new(Duration::from_secs(3600));
        plan_of(&p, &[("d", 5.0)]);
        assert_eq!(granted(&p, "w1"), "d");
        assert_eq!(p.lease("w2"), LeaseGrant::Drained { outstanding: 1 });
        assert_eq!(p.stats().requeued, 0);
    }

    #[test]
    fn refusals_requeue_for_others_and_abandon_when_unanimous() {
        let p = Planner::default();
        plan_of(&p, &[("known", 2.0), ("exotic", 9.0)]);
        // w1 cannot serve the exotic design (version skew): it re-queues
        // and is never re-granted to w1.
        assert_eq!(granted(&p, "w1"), "exotic");
        p.complete("w1", "exotic", 0.0, false);
        assert_eq!(granted(&p, "w1"), "known");
        // w2 can serve it.
        assert_eq!(granted(&p, "w2"), "exotic");
        p.complete("w2", "exotic", 1.0, true);
        p.complete("w1", "known", 1.0, true);
        let s = p.stats();
        assert_eq!((s.completed, s.refused, s.abandoned), (2, 1, 0));

        // A design *every* worker refuses is abandoned, not re-queued
        // forever.
        plan_of(&p, &[("nobody", 1.0)]);
        assert_eq!(granted(&p, "w1"), "nobody");
        p.complete("w1", "nobody", 0.0, false);
        assert_eq!(granted(&p, "w2"), "nobody");
        p.complete("w2", "nobody", 0.0, false);
        let s = p.stats();
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.outstanding(), 0);
        assert_eq!(p.lease("w1"), LeaseGrant::Drained { outstanding: 0 });
    }

    #[test]
    fn dead_registered_worker_does_not_veto_abandonment() {
        let p = Planner::new(Duration::from_millis(50));
        plan_of(&p, &[("known", 1.0), ("exotic", 9.0)]);
        // w_dead registers (leases and completes a design), then vanishes.
        assert_eq!(granted(&p, "w_dead"), "exotic");
        p.complete("w_dead", "exotic", 1.0, true);
        std::thread::sleep(Duration::from_millis(80));
        // The skewed survivor cannot serve "known". With w_dead stale,
        // the survivor's refusal is unanimous among *active* workers: the
        // design abandons instead of keeping the survivor polling
        // forever on outstanding = 1.
        assert_eq!(granted(&p, "w1"), "known");
        p.complete("w1", "known", 0.0, false);
        let s = p.stats();
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.outstanding(), 0);
        assert_eq!(p.lease("w1"), LeaseGrant::Drained { outstanding: 0 });
    }

    #[test]
    fn refusal_does_not_yank_a_stolen_lease_from_its_new_owner() {
        let p = Planner::new(Duration::ZERO);
        plan_of(&p, &[("d", 1.0)]);
        assert_eq!(granted(&p, "w1"), "d");
        assert_eq!(granted(&p, "w2"), "d"); // stolen
                                            // w1's late refusal must not disturb w2's active lease.
        p.complete("w1", "d", 0.0, false);
        p.complete("w2", "d", 1.0, true);
        assert_eq!(p.stats().completed, 1);
    }

    #[test]
    fn a_new_epoch_resets_completion_memory_but_keeps_observed_costs() {
        let p = Planner::default();
        plan_of(&p, &[("a", 1.0), ("b", 2.0)]);
        assert_eq!(granted(&p, "w"), "b");
        p.complete("w", "b", 30.0, true);
        assert_eq!(granted(&p, "w"), "a");
        p.complete("w", "a", 5.0, true);
        assert_eq!(p.lease("w"), LeaseGrant::Drained { outstanding: 0 });

        // A post-edit fleet run plans the same names under a new epoch:
        // everything re-queues — a long-lived server must not answer it
        // with "already done".
        assert_eq!(p.plan(2, &[("a".into(), 1.0), ("b".into(), 2.0)]), 2);
        let s = p.stats();
        assert_eq!((s.planned, s.completed), (2, 0));
        assert_eq!(s.outstanding(), 2);
        // And the *observed* costs survived the reset: b (30 s) still
        // outranks a (5 s), both outranking their stale priors.
        assert_eq!(granted(&p, "w"), "b");
        assert_eq!(granted(&p, "w"), "a");
        // Re-planning within the same epoch stays idempotent.
        assert_eq!(p.plan(2, &[("a".into(), 1.0)]), 0);
    }

    #[test]
    fn requeued_designs_prefer_the_worker_that_prepared_them() {
        let p = Planner::default();
        plan_of(&p, &[("pricey", 9.0), ("cheap", 1.0)]);
        assert_eq!(granted(&p, "wa"), "pricey");
        assert_eq!(granted(&p, "wb"), "cheap");
        p.complete("wa", "pricey", 9.0, true);
        p.complete("wb", "cheap", 1.0, true);

        // A post-edit re-plan queues both again. wb asks first: without
        // locality it would draw "pricey" (longest expected first), but
        // its disk tier holds "cheap" — that is the grant. wa then gets
        // its own "pricey" back.
        p.plan(2, &[("pricey".into(), 9.0), ("cheap".into(), 1.0)]);
        assert_eq!(granted(&p, "wb"), "cheap");
        assert_eq!(granted(&p, "wa"), "pricey");
        p.complete("wb", "cheap", 1.0, true);
        p.complete("wa", "pricey", 9.0, true);

        // A worker holding nothing still draws longest-expected-first.
        p.plan(3, &[("pricey".into(), 9.0), ("cheap".into(), 1.0)]);
        assert_eq!(granted(&p, "wc"), "pricey");
        // Locality never grants a refused design back: wb refuses its own
        // "cheap" on the re-plan, so a further lease drains instead.
        p.complete("wb", "cheap", 0.0, false);
        assert!(matches!(p.lease("wb"), LeaseGrant::Drained { .. }));
    }

    #[test]
    fn reports_on_unknown_designs_are_ignored() {
        let p = Planner::default();
        plan_of(&p, &[("d", 1.0)]);
        p.complete("w", "never-planned", 1.0, true);
        let s = p.stats();
        assert_eq!((s.planned, s.completed), (1, 0));
    }

    #[test]
    fn observed_costs_reorder_later_work() {
        let p = Planner::default();
        plan_of(&p, &[("a", 1.0), ("b", 2.0)]);
        assert_eq!(granted(&p, "w"), "b");
        p.complete("w", "b", 10.0, true);
        assert_eq!(granted(&p, "w"), "a");
        p.complete("w", "a", 20.0, true);
        // A fresh plan on the same server re-queues with observed costs:
        // a (20 s observed) now outranks b (10 s observed)… but both are
        // already completed, so re-planning adds nothing.
        assert_eq!(p.plan(1, &[("a".into(), 1.0), ("b".into(), 2.0)]), 0);
        assert_eq!(p.lease("w"), LeaseGrant::Drained { outstanding: 0 });
    }
}
