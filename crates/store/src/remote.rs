//! [`RemoteTier`] — the client side of the `rtlt-stored` artifact service.
//!
//! A [`StoreTier`] over one TCP connection (lazily established, reused
//! across requests, re-established after failures). The governing rule is
//! **graceful degradation**: a server that is down, unreachable, slow, or
//! speaking a different format version turns every operation into a miss
//! or a no-op — the pipeline recomputes exactly what it would have
//! computed cold, byte-identically, and never sees an error. After
//! [`MAX_CONSECUTIVE_FAILURES`] the tier trips open and stops trying for
//! the rest of the process, so a dead server costs a bounded number of
//! connect timeouts rather than one per lookup.

use crate::hash::ContentHash;
use crate::tier::{GcReport, StoreTier, TierKind, TierLookup, TierStats};
use crate::wire::{Frame, Request, Response, WireError};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Consecutive transport failures after which the tier stops trying.
pub const MAX_CONSECUTIVE_FAILURES: u32 = 3;

/// Default connect/read/write timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

#[derive(Debug, Default)]
struct RemoteState {
    conn: Option<TcpStream>,
    consecutive_failures: u32,
}

/// Client tier speaking to a shared `rtlt-stored` server.
#[derive(Debug)]
pub struct RemoteTier {
    addr: String,
    timeout: Duration,
    state: Mutex<RemoteState>,
}

impl RemoteTier {
    /// Client of the server at `addr` (`host:port`), with the
    /// [`DEFAULT_TIMEOUT`].
    pub fn new(addr: impl Into<String>) -> RemoteTier {
        RemoteTier::with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Client with an explicit per-operation timeout.
    pub fn with_timeout(addr: impl Into<String>, timeout: Duration) -> RemoteTier {
        RemoteTier {
            addr: addr.into(),
            timeout,
            state: Mutex::new(RemoteState::default()),
        }
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the tier has tripped open (too many consecutive failures).
    pub fn is_down(&self) -> bool {
        self.state
            .lock()
            .expect("remote state lock")
            .consecutive_failures
            >= MAX_CONSECUTIVE_FAILURES
    }

    fn connect(&self) -> Result<TcpStream, WireError> {
        let mut last = WireError::Io(std::io::ErrorKind::NotFound);
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(WireError::from)?
            .collect();
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout))?;
                    stream.set_write_timeout(Some(self.timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last = e.into(),
            }
        }
        Err(last)
    }

    /// One request/response round trip. Any failure drops the cached
    /// connection and bumps the failure counter; success resets it.
    fn round_trip(&self, req: &Request) -> Result<Response, WireError> {
        let mut state = self.state.lock().expect("remote state lock");
        if state.consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
            return Err(WireError::Io(std::io::ErrorKind::ConnectionRefused));
        }
        let result = (|| {
            if state.conn.is_none() {
                state.conn = Some(self.connect()?);
            }
            let conn = state.conn.as_mut().expect("connection just set");
            req.to_frame().write_to(conn)?;
            let frame = Frame::read_from(conn)?;
            Response::from_frame(&frame)
        })();
        match &result {
            Ok(_) => state.consecutive_failures = 0,
            Err(_) => {
                state.conn = None;
                state.consecutive_failures += 1;
            }
        }
        result
    }

    /// Size snapshot of the *server's* tiers, if reachable.
    pub fn stat_remote(&self) -> Option<Vec<TierStats>> {
        match self.round_trip(&Request::Stat) {
            Ok(Response::Stats(tiers)) => Some(tiers),
            _ => None,
        }
    }

    /// Asks the server to evict down to `budget_bytes`. Deliberately *not*
    /// part of [`Store::gc`](crate::Store::gc) — evicting a fleet's shared
    /// cache is an explicit operator action, never a local side effect.
    pub fn gc_remote(&self, budget_bytes: u64) -> Option<GcReport> {
        match self.round_trip(&Request::Gc { budget_bytes }) {
            Ok(Response::Done(report)) => Some(report),
            _ => None,
        }
    }
}

impl StoreTier for RemoteTier {
    fn kind(&self) -> TierKind {
        TierKind::Remote
    }

    fn get_bytes(&self, ns: &str, key: ContentHash) -> TierLookup {
        match self.round_trip(&Request::Get {
            ns: ns.to_owned(),
            key,
        }) {
            Ok(Response::Hit(payload)) => TierLookup::Hit(payload),
            // Everything else — miss, server-side failure, protocol error,
            // dead server — degrades to a miss.
            _ => TierLookup::Miss,
        }
    }

    fn put_bytes(&self, ns: &str, key: ContentHash, payload: &[u8]) {
        let _ = self.round_trip(&Request::Put {
            ns: ns.to_owned(),
            key,
            payload: payload.to_vec(),
        });
    }

    fn stats(&self) -> TierStats {
        match self.stat_remote() {
            Some(tiers) => TierStats {
                kind: TierKind::Remote,
                detail: self.addr.clone(),
                entries: tiers.iter().map(|t| t.entries).sum(),
                bytes: tiers.iter().map(|t| t.bytes).sum(),
                reachable: true,
            },
            None => TierStats {
                kind: TierKind::Remote,
                detail: self.addr.clone(),
                entries: 0,
                bytes: 0,
                reachable: false,
            },
        }
    }

    /// No local bytes to evict; remote eviction is explicit via
    /// [`RemoteTier::gc_remote`].
    fn gc(&self, _budget_bytes: u64) -> GcReport {
        GcReport::default()
    }
}
