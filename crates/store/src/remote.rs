//! [`RemoteTier`] — the client side of the `rtlt-stored` artifact service.
//!
//! A [`StoreTier`] over one TCP connection (lazily established, reused
//! across requests, re-established after failures). The governing rule is
//! **graceful degradation**: a server that is down, unreachable, slow, or
//! speaking a different format version turns every operation into a miss
//! or a no-op — the pipeline recomputes exactly what it would have
//! computed cold, byte-identically, and never sees an error. After
//! [`MAX_CONSECUTIVE_FAILURES`] the tier trips open and stops trying for
//! the rest of the process, so a dead server costs a bounded number of
//! connect timeouts rather than one per lookup.
//!
//! Against a generation-3 server the client is **pipelined**: every
//! request travels in an [`op::TAGGED`] envelope, so one connection
//! carries many in-flight exchanges and write-back PUTs become
//! fire-and-forget — up to [`PIPELINE_WINDOW`] unacknowledged puts ride
//! the wire while the pipeline keeps computing, and their acks are
//! absorbed lazily (while awaiting some later response, or in
//! [`RemoteTier::flush`]). Responses are matched by tag, not arrival
//! order. The first exchange against an unknown peer doubles as the
//! framing probe: a pre-gen3 server answers the envelope with a bare
//! `Failed` ("request opcode") on the still-alive connection, and the
//! client falls back to serialized one-at-a-time exchanges from then on —
//! the same negotiation-by-refusal the encoding ops use, one generation
//! up. `RTLT_NO_PIPELINE=1` forces the serialized path (A/B runs, CI).
//!
//! Payloads travel as [`crate::compress`] frames through the v2 data ops
//! (`GET2`/`PUT2`/`GETM2`). A legacy server does not know those opcodes
//! and answers `Failed` — a *healthy* answer that does not bump the
//! failure counter; the client remembers the peer as legacy and falls
//! back to the v1 ops, decompressing on the way out and lifting bare
//! payloads into raw frames on the way in. Either way the store above
//! sees frames, and a mixed-version fleet interoperates byte-identically.
//!
//! The tier also counts **round trips** — write→read turnarounds on the
//! wire, the thing pipelining actually removes (request counts stay the
//! same; waiting does not). [`RemoteTier::round_trips`] is cumulative and
//! monotonic; the store samples it around remote calls to attribute
//! turnarounds per namespace.

use crate::compress;
use crate::hash::ContentHash;
use crate::plan::{LeaseGrant, PlanStats};
use crate::tier::{GcReport, StoreTier, TierKind, TierLookup, TierStats};
use crate::wire::{
    op, tag_request, untag, Frame, FrameBudget, Request, Response, ServerLoad, WireError,
    MAX_CONN_INFLIGHT, PAYLOAD_ENCODING_FRAME,
};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Consecutive transport failures after which the tier stops trying.
pub const MAX_CONSECUTIVE_FAILURES: u32 = 3;

/// Default connect/read/write timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// In-flight window of fire-and-forget PUTs: how many unacknowledged
/// tagged writes may ride the wire before the client absorbs an ack.
/// Small on purpose — the point is overlapping latency, not buffering
/// unbounded bytes on either side.
pub const PIPELINE_WINDOW: usize = 8;

/// What the peer's framing negotiation has established so far.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum PeerFraming {
    /// Nothing exchanged yet: the first exchange probes with a tagged
    /// envelope (when pipelining is enabled at all).
    #[default]
    Unknown,
    /// The peer answered a tagged envelope in kind — multiplex away.
    Tagged,
    /// The peer refused the envelope opcode — serialize exchanges.
    Serial,
}

#[derive(Debug, Default)]
struct RemoteState {
    conn: Option<TcpStream>,
    consecutive_failures: u32,
    /// The peer answered a v2 data opcode with `Failed` — it predates the
    /// compressed-payload ops. Stick to the v1 ops from then on instead of
    /// paying a doomed extra round trip per operation.
    peer_legacy: bool,
    framing: PeerFraming,
    next_tag: u64,
    /// Tags of fire-and-forget PUTs whose acks have not been absorbed yet
    /// (bounded by [`PIPELINE_WINDOW`]).
    pending_puts: VecDeque<u64>,
    /// A request was written since the last read — the next read is a
    /// wire turnaround.
    wrote_since_read: bool,
}

/// Outcome of one tagged exchange attempt against a peer of unknown or
/// tagged framing.
enum TaggedOutcome<T> {
    /// The peer answered in kind.
    Answered(T),
    /// The peer refused the envelope opcode (pre-gen3); the state is now
    /// pinned [`PeerFraming::Serial`] and the caller re-sends bare.
    Refused,
}

/// Client tier speaking to a shared `rtlt-stored` server.
#[derive(Debug)]
pub struct RemoteTier {
    addr: String,
    timeout: Duration,
    /// Whether tagged pipelining may be attempted at all (`false` forces
    /// the serialized path — `RTLT_NO_PIPELINE=1`, A/B runs, tests).
    pipeline: bool,
    /// Cumulative write→read turnarounds on the wire (monotonic).
    turns: AtomicU64,
    state: Mutex<RemoteState>,
}

impl RemoteTier {
    /// Client of the server at `addr` (`host:port`), with the
    /// [`DEFAULT_TIMEOUT`]. Pipelining is on unless `RTLT_NO_PIPELINE=1`
    /// is set in the environment.
    pub fn new(addr: impl Into<String>) -> RemoteTier {
        RemoteTier::with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Client with an explicit per-operation timeout.
    pub fn with_timeout(addr: impl Into<String>, timeout: Duration) -> RemoteTier {
        let pipeline = !std::env::var("RTLT_NO_PIPELINE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        RemoteTier::with_options(addr, timeout, pipeline)
    }

    /// Client with explicit timeout and pipelining choice (tests and A/B
    /// harnesses; production uses the environment-driven constructors).
    pub fn with_options(addr: impl Into<String>, timeout: Duration, pipeline: bool) -> RemoteTier {
        RemoteTier {
            addr: addr.into(),
            timeout,
            pipeline,
            turns: AtomicU64::new(0),
            state: Mutex::new(RemoteState::default()),
        }
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether tagged pipelining may be attempted (configuration, not the
    /// negotiated outcome — see [`RemoteTier::peer_tagged`]).
    pub fn pipelining(&self) -> bool {
        self.pipeline
    }

    /// Whether the tier has tripped open (too many consecutive failures).
    pub fn is_down(&self) -> bool {
        self.state
            .lock()
            .expect("remote state lock")
            .consecutive_failures
            >= MAX_CONSECUTIVE_FAILURES
    }

    /// Whether the peer has identified itself as a pre-compression server
    /// (it answered a v2 data opcode with `Failed`), pinning this client
    /// to the v1 ops with bare payloads.
    pub fn peer_legacy(&self) -> bool {
        self.state.lock().expect("remote state lock").peer_legacy
    }

    /// The negotiated framing: `Some(true)` = the peer multiplexes tagged
    /// envelopes, `Some(false)` = it refused them (serialized exchanges),
    /// `None` = nothing exchanged yet.
    pub fn peer_tagged(&self) -> Option<bool> {
        match self.state.lock().expect("remote state lock").framing {
            PeerFraming::Unknown => None,
            PeerFraming::Tagged => Some(true),
            PeerFraming::Serial => Some(false),
        }
    }

    /// Cumulative write→read wire turnarounds this tier has paid.
    pub fn wire_round_trips(&self) -> u64 {
        self.turns.load(Ordering::Relaxed)
    }

    fn mark_peer_legacy(&self) {
        self.state.lock().expect("remote state lock").peer_legacy = true;
    }

    fn connect(&self) -> Result<TcpStream, WireError> {
        let mut last = WireError::Io(std::io::ErrorKind::NotFound);
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(WireError::from)?
            .collect();
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout))?;
                    stream.set_write_timeout(Some(self.timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last = e.into(),
            }
        }
        Err(last)
    }

    /// Runs one wire interaction under the failure breaker: refused
    /// outright once tripped; a failure drops the connection (and any
    /// unacknowledged puts with it — lost best-effort writes, never
    /// corrupt ones) and bumps the counter; success resets it.
    fn with_breaker<T>(
        &self,
        f: impl FnOnce(&mut RemoteState) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut state = self.state.lock().expect("remote state lock");
        if state.consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
            return Err(WireError::Io(std::io::ErrorKind::ConnectionRefused));
        }
        let result = f(&mut state);
        match &result {
            Ok(_) => state.consecutive_failures = 0,
            Err(_) => {
                state.conn = None;
                state.pending_puts.clear();
                state.wrote_since_read = false;
                state.consecutive_failures += 1;
            }
        }
        result
    }

    fn send_frame(&self, state: &mut RemoteState, frame: &Frame) -> Result<(), WireError> {
        if state.conn.is_none() {
            state.conn = Some(self.connect()?);
        }
        let conn = state.conn.as_mut().expect("connection just set");
        frame.write_to(conn)?;
        state.wrote_since_read = true;
        Ok(())
    }

    fn read_frame(
        &self,
        state: &mut RemoteState,
        budget: &mut FrameBudget,
    ) -> Result<Frame, WireError> {
        if state.wrote_since_read {
            state.wrote_since_read = false;
            self.turns.fetch_add(1, Ordering::Relaxed);
        }
        let conn = state
            .conn
            .as_mut()
            .ok_or(WireError::Io(std::io::ErrorKind::NotConnected))?;
        Frame::read_budgeted(conn, budget)
    }

    /// Absorbs the ack of a previously fire-and-forgotten PUT. Any tag
    /// that is neither the awaited one nor a pending put is a protocol
    /// error — the demux has exactly those two kinds in flight.
    fn absorb_put_ack(&self, state: &mut RemoteState, tag: u64) -> Result<(), WireError> {
        match state.pending_puts.iter().position(|&t| t == tag) {
            Some(i) => {
                state.pending_puts.remove(i);
                Ok(())
            }
            None => Err(WireError::Malformed("response for unknown tag")),
        }
    }

    /// Reads one tagged response and absorbs it as a put ack.
    fn drain_one_put(&self, state: &mut RemoteState) -> Result<(), WireError> {
        let mut budget = FrameBudget::new(MAX_CONN_INFLIGHT);
        let frame = self.read_frame(state, &mut budget)?;
        if frame.op != op::TAGGED_RESP {
            return Err(WireError::Malformed("untagged frame from tagged peer"));
        }
        let (tag, _) = untag(&frame)?;
        self.absorb_put_ack(state, tag)
    }

    /// One bare (serialized) request/response exchange.
    fn serial_exchange(
        &self,
        state: &mut RemoteState,
        req: &Request,
    ) -> Result<Response, WireError> {
        self.send_frame(state, &req.to_frame())?;
        let mut budget = FrameBudget::new(MAX_CONN_INFLIGHT);
        let frame = self.read_frame(state, &mut budget)?;
        Response::from_frame(&frame)
    }

    /// Sends `req` in a tagged envelope and awaits the response matching
    /// its tag, absorbing put acks for other tags along the way. Against a
    /// peer of unknown framing this doubles as the probe: a bare `Failed`
    /// pins the peer serial and returns [`TaggedOutcome::Refused`].
    fn tagged_exchange(
        &self,
        state: &mut RemoteState,
        req: &Request,
    ) -> Result<TaggedOutcome<Response>, WireError> {
        let tag = state.next_tag;
        state.next_tag += 1;
        self.send_frame(state, &tag_request(tag, &req.to_frame()))?;
        let mut budget = FrameBudget::new(MAX_CONN_INFLIGHT);
        loop {
            let frame = self.read_frame(state, &mut budget)?;
            match self.demux(state, frame, tag)? {
                Some(inner) => return Ok(TaggedOutcome::Answered(Response::from_frame(&inner)?)),
                None => {
                    if state.framing == PeerFraming::Serial {
                        return Ok(TaggedOutcome::Refused);
                    }
                }
            }
        }
    }

    /// Demultiplexes one received frame while awaiting `want`: returns the
    /// inner frame when it answers `want`; absorbs put acks (yielding
    /// `None` to keep reading); resolves the framing probe (a bare
    /// `Failed` from an unknown peer pins it serial and yields `None` —
    /// the caller observes the pinned state and re-sends bare).
    fn demux(
        &self,
        state: &mut RemoteState,
        frame: Frame,
        want: u64,
    ) -> Result<Option<Frame>, WireError> {
        if frame.op == op::TAGGED_RESP {
            state.framing = PeerFraming::Tagged;
            let (tag, inner) = untag(&frame)?;
            if tag == want {
                return Ok(Some(inner));
            }
            self.absorb_put_ack(state, tag)?;
            return Ok(None);
        }
        if state.framing == PeerFraming::Unknown {
            // A pre-gen3 peer answers the envelope opcode with a bare
            // Failed on the still-alive connection — the healthy refusal
            // that pins serialized framing without touching the breaker.
            return match Response::from_frame(&frame)? {
                Response::Failed(_) => {
                    state.framing = PeerFraming::Serial;
                    Ok(None)
                }
                _ => Err(WireError::Malformed("unexpected untagged response")),
            };
        }
        Err(WireError::Malformed("untagged frame from tagged peer"))
    }

    /// One single-response exchange through whatever framing the peer
    /// speaks (probing it on first contact when pipelining is enabled).
    fn exchange(&self, state: &mut RemoteState, req: &Request) -> Result<Response, WireError> {
        if self.pipeline && state.framing != PeerFraming::Serial {
            match self.tagged_exchange(state, req)? {
                TaggedOutcome::Answered(resp) => return Ok(resp),
                TaggedOutcome::Refused => {}
            }
        }
        self.serial_exchange(state, req)
    }

    /// One request/response round trip under the breaker.
    fn round_trip(&self, req: &Request) -> Result<Response, WireError> {
        self.with_breaker(|state| self.exchange(state, req))
    }

    /// Reads a [`Response::BatchPart`] stream (bare or tagged-with `tag`)
    /// under one cumulative [`FrameBudget`], filling `out`. Parts already
    /// received survive a mid-stream failure — the unanswered tail simply
    /// stays "miss" (partial-batch degradation). Returns `Ok(false)` when
    /// the server answered `Failed` — it does not speak this opcode; a
    /// healthy answer that does not bump the failure counter.
    fn read_batch_stream(
        &self,
        state: &mut RemoteState,
        tag: Option<u64>,
        wrap_raw: bool,
        out: &mut [TierLookup],
    ) -> Result<bool, WireError> {
        let mut budget = FrameBudget::new(MAX_CONN_INFLIGHT);
        loop {
            let frame = self.read_frame(state, &mut budget)?;
            let inner = match tag {
                Some(want) => match self.demux(state, frame, want)? {
                    Some(inner) => inner,
                    None => {
                        if state.framing == PeerFraming::Serial {
                            return Ok(false); // envelope refused
                        }
                        continue; // absorbed a put ack
                    }
                },
                None => frame,
            };
            match Response::from_frame(&inner)? {
                Response::BatchPart { items: part, last } => {
                    for (idx, payload) in part {
                        if let (Some(slot), Some(p)) = (out.get_mut(idx as usize), payload) {
                            *slot = if wrap_raw {
                                TierLookup::Hit(compress::raw_frame(&p))
                            } else {
                                TierLookup::Hit(p)
                            };
                        }
                    }
                    if last {
                        return Ok(true);
                    }
                }
                Response::Failed(_) => return Ok(false), // opcode unknown to peer
                _ => return Err(WireError::Malformed("unexpected batch response")),
            }
        }
    }

    /// One batched exchange: writes `req` (a GETM or GETM2), then reads
    /// the part stream. Tagged framing is used when negotiated (or still
    /// being probed), so the batch can overlap in-flight puts.
    fn batch_round_trip(
        &self,
        req: &Request,
        wrap_raw: bool,
        out: &mut [TierLookup],
    ) -> Result<bool, WireError> {
        self.with_breaker(|state| {
            if self.pipeline && state.framing != PeerFraming::Serial {
                let tag = state.next_tag;
                state.next_tag += 1;
                self.send_frame(state, &tag_request(tag, &req.to_frame()))?;
                match self.read_batch_stream(state, Some(tag), wrap_raw, out)? {
                    true => return Ok(true),
                    // Either the envelope was refused (framing now pinned
                    // serial — re-send bare below) or the inner opcode was
                    // refused by a tagged peer (fall through identically;
                    // the caller's v1 fallback handles it).
                    false => {
                        if state.framing == PeerFraming::Tagged {
                            return Ok(false);
                        }
                    }
                }
            }
            self.send_frame(state, &req.to_frame())?;
            self.read_batch_stream(state, None, wrap_raw, out)
        })
    }

    /// Size snapshot of the *server's* tiers, if reachable.
    pub fn stat_remote(&self) -> Option<Vec<TierStats>> {
        match self.round_trip(&Request::Stat) {
            Ok(Response::Stats(tiers)) => Some(tiers),
            _ => None,
        }
    }

    /// Live load snapshot of the server (tier sizes plus connection and
    /// in-flight gauges). `None` when the server is unreachable or older
    /// than generation 3 (it answers `Failed`, which is healthy).
    pub fn server_load(&self) -> Option<ServerLoad> {
        match self.round_trip(&Request::Stat2) {
            Ok(Response::ServerStats(load)) => Some(load),
            _ => None,
        }
    }

    /// Seeds/extends the server's work queue (idempotent union within one
    /// content `epoch`; a new epoch starts a fresh run). Returns whether
    /// the server acknowledged.
    pub fn plan_remote(&self, epoch: u64, designs: &[(String, f64)]) -> bool {
        matches!(
            self.round_trip(&Request::Plan {
                epoch,
                designs: designs.to_vec(),
            }),
            Ok(Response::Done(_))
        )
    }

    /// Asks the server for one design lease. `None` means the server is
    /// unreachable or too old to plan — the caller falls back to the
    /// static shard path.
    pub fn lease_remote(&self, worker: &str) -> Option<LeaseGrant> {
        match self.round_trip(&Request::Lease {
            worker: worker.to_owned(),
        }) {
            Ok(Response::Leased { design }) => Some(LeaseGrant::Granted { design }),
            Ok(Response::Drained { outstanding }) => Some(LeaseGrant::Drained { outstanding }),
            _ => None,
        }
    }

    /// Reports a leased design prepared (`ok = true`, with its observed
    /// wall time) or refused. Returns whether the server acknowledged.
    pub fn report_remote(&self, worker: &str, design: &str, seconds: f64, ok: bool) -> bool {
        matches!(
            self.round_trip(&Request::Report {
                worker: worker.to_owned(),
                design: design.to_owned(),
                seconds,
                ok,
            }),
            Ok(Response::Done(_))
        )
    }

    /// Snapshot of the server's shard-planner counters, if reachable.
    pub fn plan_stats_remote(&self) -> Option<PlanStats> {
        match self.round_trip(&Request::PlanStat) {
            Ok(Response::PlanStats(stats)) => Some(stats),
            _ => None,
        }
    }

    /// Asks the server to evict down to `budget_bytes`. Deliberately *not*
    /// part of [`Store::gc`](crate::Store::gc) — evicting a fleet's shared
    /// cache is an explicit operator action, never a local side effect.
    pub fn gc_remote(&self, budget_bytes: u64) -> Option<GcReport> {
        match self.round_trip(&Request::Gc { budget_bytes }) {
            Ok(Response::Done(report)) => Some(report),
            _ => None,
        }
    }
}

impl StoreTier for RemoteTier {
    fn kind(&self) -> TierKind {
        TierKind::Remote
    }

    fn get_bytes(&self, ns: &str, key: ContentHash) -> TierLookup {
        if !self.peer_legacy() {
            match self.round_trip(&Request::Get2 {
                ns: ns.to_owned(),
                key,
                encoding: PAYLOAD_ENCODING_FRAME,
            }) {
                Ok(Response::Hit(frame)) => return TierLookup::Hit(frame),
                Ok(Response::Miss) => return TierLookup::Miss,
                // A legacy server answers Failed ("request opcode"): fall
                // back to the v1 GET below, on this same healthy connection.
                Ok(Response::Failed(_)) => self.mark_peer_legacy(),
                // Everything else — protocol error, dead server — degrades
                // to a miss.
                _ => return TierLookup::Miss,
            }
        }
        match self.round_trip(&Request::Get {
            ns: ns.to_owned(),
            key,
        }) {
            // A v1 hit carries bare payload bytes; lift them into the
            // frame space the tiers above expect.
            Ok(Response::Hit(payload)) => TierLookup::Hit(compress::raw_frame(&payload)),
            _ => TierLookup::Miss,
        }
    }

    fn get_bytes_batch(&self, items: &[(String, ContentHash)]) -> Vec<TierLookup> {
        let mut out = vec![TierLookup::Miss; items.len()];
        if items.is_empty() {
            return out;
        }
        if !self.peer_legacy() {
            // Partial results survive a mid-stream failure; the rest stay
            // misses, which the store recomputes byte-identically.
            match self.batch_round_trip(
                &Request::GetBatch2 {
                    items: items.to_vec(),
                    encoding: PAYLOAD_ENCODING_FRAME,
                },
                false,
                &mut out,
            ) {
                Ok(true) | Err(_) => return out,
                Ok(false) => self.mark_peer_legacy(),
            }
        }
        // v1 GETM against a legacy server: hits arrive bare and are lifted
        // into raw frames. A server too old even for GETM answers Failed,
        // which reads as an all-miss batch; per-key GETs still work.
        let _ = self.batch_round_trip(
            &Request::GetBatch {
                items: items.to_vec(),
            },
            true,
            &mut out,
        );
        out
    }

    fn put_bytes(&self, ns: &str, key: ContentHash, payload: &[u8]) {
        if !self.peer_legacy() {
            let req = Request::Put2 {
                ns: ns.to_owned(),
                key,
                encoding: PAYLOAD_ENCODING_FRAME,
                payload: payload.to_vec(),
            };
            if self.pipeline {
                // Fire-and-forget within the window against a tagged peer;
                // the ack is absorbed lazily. Unknown peers resolve their
                // framing through the synchronous probe in `exchange`.
                let piped = self.with_breaker(|state| {
                    if state.framing != PeerFraming::Tagged {
                        return Ok(false);
                    }
                    while state.pending_puts.len() >= PIPELINE_WINDOW {
                        self.drain_one_put(state)?;
                    }
                    let tag = state.next_tag;
                    state.next_tag += 1;
                    self.send_frame(state, &tag_request(tag, &req.to_frame()))?;
                    state.pending_puts.push_back(tag);
                    Ok(true)
                });
                match piped {
                    Ok(true) => return,
                    Ok(false) => {}
                    // Best-effort write lost; never an error upstream.
                    Err(_) => return,
                }
            }
            match self.round_trip(&req) {
                Ok(Response::Failed(_)) => self.mark_peer_legacy(),
                _ => return,
            }
        }
        // Legacy server: ship the decoded payload through the v1 PUT. A
        // frame that does not decompress is dropped, never shipped as
        // garbage (the write was best-effort anyway).
        if let Some(decoded) = compress::decompress(payload) {
            let _ = self.round_trip(&Request::Put {
                ns: ns.to_owned(),
                key,
                payload: decoded,
            });
        }
    }

    /// Blocks until every fire-and-forgotten PUT has been acknowledged (or
    /// the connection fails, losing the best-effort writes). Callers that
    /// care about writes being durable-on-the-server before they exit or
    /// measure call this; nobody else pays for it.
    fn flush(&self) {
        {
            let state = self.state.lock().expect("remote state lock");
            if state.pending_puts.is_empty() {
                return;
            }
        }
        let _ = self.with_breaker(|state| {
            while !state.pending_puts.is_empty() {
                self.drain_one_put(state)?;
            }
            Ok(())
        });
    }

    fn round_trips(&self) -> u64 {
        self.wire_round_trips()
    }

    fn stats(&self) -> TierStats {
        match self.stat_remote() {
            Some(tiers) => TierStats {
                kind: TierKind::Remote,
                detail: self.addr.clone(),
                entries: tiers.iter().map(|t| t.entries).sum(),
                bytes: tiers.iter().map(|t| t.bytes).sum(),
                reachable: true,
            },
            None => TierStats {
                kind: TierKind::Remote,
                detail: self.addr.clone(),
                entries: 0,
                bytes: 0,
                reachable: false,
            },
        }
    }

    /// No local bytes to evict; remote eviction is explicit via
    /// [`RemoteTier::gc_remote`].
    fn gc(&self, _budget_bytes: u64) -> GcReport {
        GcReport::default()
    }
}
