//! [`RemoteTier`] — the client side of the `rtlt-stored` artifact service.
//!
//! A [`StoreTier`] over one TCP connection (lazily established, reused
//! across requests, re-established after failures). The governing rule is
//! **graceful degradation**: a server that is down, unreachable, slow, or
//! speaking a different format version turns every operation into a miss
//! or a no-op — the pipeline recomputes exactly what it would have
//! computed cold, byte-identically, and never sees an error. After
//! [`MAX_CONSECUTIVE_FAILURES`] the tier trips open and stops trying for
//! the rest of the process, so a dead server costs a bounded number of
//! connect timeouts rather than one per lookup.
//!
//! Payloads travel as [`crate::compress`] frames through the v2 data ops
//! (`GET2`/`PUT2`/`GETM2`). A legacy server does not know those opcodes
//! and answers `Failed` — a *healthy* answer that does not bump the
//! failure counter; the client remembers the peer as legacy and falls
//! back to the v1 ops, decompressing on the way out and lifting bare
//! payloads into raw frames on the way in. Either way the store above
//! sees frames, and a mixed-version fleet interoperates byte-identically.

use crate::compress;
use crate::hash::ContentHash;
use crate::plan::{LeaseGrant, PlanStats};
use crate::tier::{GcReport, StoreTier, TierKind, TierLookup, TierStats};
use crate::wire::{
    Frame, FrameBudget, Request, Response, WireError, MAX_CONN_INFLIGHT, PAYLOAD_ENCODING_FRAME,
};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Consecutive transport failures after which the tier stops trying.
pub const MAX_CONSECUTIVE_FAILURES: u32 = 3;

/// Default connect/read/write timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

#[derive(Debug, Default)]
struct RemoteState {
    conn: Option<TcpStream>,
    consecutive_failures: u32,
    /// The peer answered a v2 data opcode with `Failed` — it predates the
    /// compressed-payload ops. Stick to the v1 ops from then on instead of
    /// paying a doomed extra round trip per operation.
    peer_legacy: bool,
}

/// Client tier speaking to a shared `rtlt-stored` server.
#[derive(Debug)]
pub struct RemoteTier {
    addr: String,
    timeout: Duration,
    state: Mutex<RemoteState>,
}

impl RemoteTier {
    /// Client of the server at `addr` (`host:port`), with the
    /// [`DEFAULT_TIMEOUT`].
    pub fn new(addr: impl Into<String>) -> RemoteTier {
        RemoteTier::with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Client with an explicit per-operation timeout.
    pub fn with_timeout(addr: impl Into<String>, timeout: Duration) -> RemoteTier {
        RemoteTier {
            addr: addr.into(),
            timeout,
            state: Mutex::new(RemoteState::default()),
        }
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the tier has tripped open (too many consecutive failures).
    pub fn is_down(&self) -> bool {
        self.state
            .lock()
            .expect("remote state lock")
            .consecutive_failures
            >= MAX_CONSECUTIVE_FAILURES
    }

    /// Whether the peer has identified itself as a pre-compression server
    /// (it answered a v2 data opcode with `Failed`), pinning this client
    /// to the v1 ops with bare payloads.
    pub fn peer_legacy(&self) -> bool {
        self.state.lock().expect("remote state lock").peer_legacy
    }

    fn mark_peer_legacy(&self) {
        self.state.lock().expect("remote state lock").peer_legacy = true;
    }

    fn connect(&self) -> Result<TcpStream, WireError> {
        let mut last = WireError::Io(std::io::ErrorKind::NotFound);
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(WireError::from)?
            .collect();
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout))?;
                    stream.set_write_timeout(Some(self.timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last = e.into(),
            }
        }
        Err(last)
    }

    /// One request/response round trip. Any failure drops the cached
    /// connection and bumps the failure counter; success resets it.
    fn round_trip(&self, req: &Request) -> Result<Response, WireError> {
        let mut state = self.state.lock().expect("remote state lock");
        if state.consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
            return Err(WireError::Io(std::io::ErrorKind::ConnectionRefused));
        }
        let result = (|| {
            if state.conn.is_none() {
                state.conn = Some(self.connect()?);
            }
            let conn = state.conn.as_mut().expect("connection just set");
            req.to_frame().write_to(conn)?;
            let frame = Frame::read_from(conn)?;
            Response::from_frame(&frame)
        })();
        match &result {
            Ok(_) => state.consecutive_failures = 0,
            Err(_) => {
                state.conn = None;
                state.consecutive_failures += 1;
            }
        }
        result
    }

    /// One batched exchange: writes `req` (a GETM or GETM2), then reads
    /// the [`Response::BatchPart`] stream under one cumulative
    /// [`FrameBudget`]. Parts already received survive a mid-stream
    /// failure — the unanswered tail simply stays "miss" (partial-batch
    /// degradation). With `wrap_raw` the hit payloads are bare v1 bytes
    /// and get lifted into raw compress frames, so callers always receive
    /// frames. Returns `Ok(false)` when the server answered `Failed` —
    /// it does not speak this opcode; a healthy answer that does not bump
    /// the failure counter.
    fn batch_round_trip(
        &self,
        req: &Request,
        wrap_raw: bool,
        out: &mut [TierLookup],
    ) -> Result<bool, WireError> {
        let mut state = self.state.lock().expect("remote state lock");
        if state.consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
            return Err(WireError::Io(std::io::ErrorKind::ConnectionRefused));
        }
        let result = (|| {
            if state.conn.is_none() {
                state.conn = Some(self.connect()?);
            }
            let conn = state.conn.as_mut().expect("connection just set");
            req.to_frame().write_to(conn)?;
            let mut budget = FrameBudget::new(MAX_CONN_INFLIGHT);
            loop {
                let frame = Frame::read_budgeted(conn, &mut budget)?;
                match Response::from_frame(&frame)? {
                    Response::BatchPart { items: part, last } => {
                        for (idx, payload) in part {
                            if let (Some(slot), Some(p)) = (out.get_mut(idx as usize), payload) {
                                *slot = if wrap_raw {
                                    TierLookup::Hit(compress::raw_frame(&p))
                                } else {
                                    TierLookup::Hit(p)
                                };
                            }
                        }
                        if last {
                            return Ok(true);
                        }
                    }
                    Response::Failed(_) => return Ok(false), // opcode unknown to peer
                    _ => return Err(WireError::Malformed("unexpected batch response")),
                }
            }
        })();
        match &result {
            Ok(_) => state.consecutive_failures = 0,
            Err(_) => {
                state.conn = None;
                state.consecutive_failures += 1;
            }
        }
        result
    }

    /// Size snapshot of the *server's* tiers, if reachable.
    pub fn stat_remote(&self) -> Option<Vec<TierStats>> {
        match self.round_trip(&Request::Stat) {
            Ok(Response::Stats(tiers)) => Some(tiers),
            _ => None,
        }
    }

    /// Seeds/extends the server's work queue (idempotent union within one
    /// content `epoch`; a new epoch starts a fresh run). Returns whether
    /// the server acknowledged.
    pub fn plan_remote(&self, epoch: u64, designs: &[(String, f64)]) -> bool {
        matches!(
            self.round_trip(&Request::Plan {
                epoch,
                designs: designs.to_vec(),
            }),
            Ok(Response::Done(_))
        )
    }

    /// Asks the server for one design lease. `None` means the server is
    /// unreachable or too old to plan — the caller falls back to the
    /// static shard path.
    pub fn lease_remote(&self, worker: &str) -> Option<LeaseGrant> {
        match self.round_trip(&Request::Lease {
            worker: worker.to_owned(),
        }) {
            Ok(Response::Leased { design }) => Some(LeaseGrant::Granted { design }),
            Ok(Response::Drained { outstanding }) => Some(LeaseGrant::Drained { outstanding }),
            _ => None,
        }
    }

    /// Reports a leased design prepared (`ok = true`, with its observed
    /// wall time) or refused. Returns whether the server acknowledged.
    pub fn report_remote(&self, worker: &str, design: &str, seconds: f64, ok: bool) -> bool {
        matches!(
            self.round_trip(&Request::Report {
                worker: worker.to_owned(),
                design: design.to_owned(),
                seconds,
                ok,
            }),
            Ok(Response::Done(_))
        )
    }

    /// Snapshot of the server's shard-planner counters, if reachable.
    pub fn plan_stats_remote(&self) -> Option<PlanStats> {
        match self.round_trip(&Request::PlanStat) {
            Ok(Response::PlanStats(stats)) => Some(stats),
            _ => None,
        }
    }

    /// Asks the server to evict down to `budget_bytes`. Deliberately *not*
    /// part of [`Store::gc`](crate::Store::gc) — evicting a fleet's shared
    /// cache is an explicit operator action, never a local side effect.
    pub fn gc_remote(&self, budget_bytes: u64) -> Option<GcReport> {
        match self.round_trip(&Request::Gc { budget_bytes }) {
            Ok(Response::Done(report)) => Some(report),
            _ => None,
        }
    }
}

impl StoreTier for RemoteTier {
    fn kind(&self) -> TierKind {
        TierKind::Remote
    }

    fn get_bytes(&self, ns: &str, key: ContentHash) -> TierLookup {
        if !self.peer_legacy() {
            match self.round_trip(&Request::Get2 {
                ns: ns.to_owned(),
                key,
                encoding: PAYLOAD_ENCODING_FRAME,
            }) {
                Ok(Response::Hit(frame)) => return TierLookup::Hit(frame),
                Ok(Response::Miss) => return TierLookup::Miss,
                // A legacy server answers Failed ("request opcode"): fall
                // back to the v1 GET below, on this same healthy connection.
                Ok(Response::Failed(_)) => self.mark_peer_legacy(),
                // Everything else — protocol error, dead server — degrades
                // to a miss.
                _ => return TierLookup::Miss,
            }
        }
        match self.round_trip(&Request::Get {
            ns: ns.to_owned(),
            key,
        }) {
            // A v1 hit carries bare payload bytes; lift them into the
            // frame space the tiers above expect.
            Ok(Response::Hit(payload)) => TierLookup::Hit(compress::raw_frame(&payload)),
            _ => TierLookup::Miss,
        }
    }

    fn get_bytes_batch(&self, items: &[(String, ContentHash)]) -> Vec<TierLookup> {
        let mut out = vec![TierLookup::Miss; items.len()];
        if items.is_empty() {
            return out;
        }
        if !self.peer_legacy() {
            // Partial results survive a mid-stream failure; the rest stay
            // misses, which the store recomputes byte-identically.
            match self.batch_round_trip(
                &Request::GetBatch2 {
                    items: items.to_vec(),
                    encoding: PAYLOAD_ENCODING_FRAME,
                },
                false,
                &mut out,
            ) {
                Ok(true) | Err(_) => return out,
                Ok(false) => self.mark_peer_legacy(),
            }
        }
        // v1 GETM against a legacy server: hits arrive bare and are lifted
        // into raw frames. A server too old even for GETM answers Failed,
        // which reads as an all-miss batch; per-key GETs still work.
        let _ = self.batch_round_trip(
            &Request::GetBatch {
                items: items.to_vec(),
            },
            true,
            &mut out,
        );
        out
    }

    fn put_bytes(&self, ns: &str, key: ContentHash, payload: &[u8]) {
        if !self.peer_legacy() {
            match self.round_trip(&Request::Put2 {
                ns: ns.to_owned(),
                key,
                encoding: PAYLOAD_ENCODING_FRAME,
                payload: payload.to_vec(),
            }) {
                Ok(Response::Failed(_)) => self.mark_peer_legacy(),
                _ => return,
            }
        }
        // Legacy server: ship the decoded payload through the v1 PUT. A
        // frame that does not decompress is dropped, never shipped as
        // garbage (the write was best-effort anyway).
        if let Some(decoded) = compress::decompress(payload) {
            let _ = self.round_trip(&Request::Put {
                ns: ns.to_owned(),
                key,
                payload: decoded,
            });
        }
    }

    fn stats(&self) -> TierStats {
        match self.stat_remote() {
            Some(tiers) => TierStats {
                kind: TierKind::Remote,
                detail: self.addr.clone(),
                entries: tiers.iter().map(|t| t.entries).sum(),
                bytes: tiers.iter().map(|t| t.bytes).sum(),
                reachable: true,
            },
            None => TierStats {
                kind: TierKind::Remote,
                detail: self.addr.clone(),
                entries: 0,
                bytes: 0,
                reachable: false,
            },
        }
    }

    /// No local bytes to evict; remote eviction is explicit via
    /// [`RemoteTier::gc_remote`].
    fn gc(&self, _budget_bytes: u64) -> GcReport {
        GcReport::default()
    }
}
