//! Wire protocol of the `rtlt-stored` artifact service.
//!
//! Length-prefixed binary frames over TCP, reusing the [`Enc`]/[`Dec`]
//! codec for frame bodies and stamping every frame with the
//! [`FRAME_VERSION`] — a client and server of different *frame* layouts
//! refuse each other's frames, which the client maps to "miss, recompute"
//! (never an error). The frame version is deliberately decoupled both from
//! the on-disk [`FORMAT_VERSION`] and from the protocol generation
//! [`WIRE_VERSION`]: neither the disk format moving to compressed payloads
//! (generation 2) nor tagged multiplexed framing (generation 3) changed
//! the byte layout of a frame, so old and new nodes keep exchanging
//! frames and negotiate *capabilities* per opcode instead. A peer that
//! does not know an opcode answers [`Response::Failed`] on the still-alive
//! connection, which the client takes as "older peer — fall back":
//!
//! * generation 2 — [`Request::Get2`]/[`Request::Put2`]/
//!   [`Request::GetBatch2`] carry an encoding tag
//!   ([`PAYLOAD_ENCODING_FRAME`] = compress frames); refused, the client
//!   falls back to the v1 ops with bare payloads.
//! * generation 3 — [`op::TAGGED`] envelopes prefix a request id to any
//!   inner op (see [`tag_request`]/[`untag`]), so one connection carries
//!   many in-flight exchanges and responses are matched by tag, not by
//!   order; refused, the client falls back to serialized one-at-a-time
//!   exchanges. [`Request::Stat2`] additionally reports live server load
//!   ([`Response::ServerStats`]).
//!
//! ```text
//! frame := magic "RTLW" (4) | version u32 | op u8 | body_len u64
//!          | body [body_len] | checksum u64 (FNV-1a of body)
//! tagged body := tag u64 | inner op u8 | inner body
//! ```
//!
//! Requests: [`Request::Get`], [`Request::Put`], [`Request::GetBatch`],
//! [`Request::Stat`], [`Request::Gc`], plus the shard-planner verbs
//! [`Request::Lease`], [`Request::Report`], [`Request::Plan`] and
//! [`Request::PlanStat`]. Responses: [`Response::Hit`], [`Response::Miss`],
//! [`Response::BatchPart`], [`Response::Done`], [`Response::Stats`],
//! [`Response::ServerStats`], [`Response::Leased`], [`Response::Drained`],
//! [`Response::PlanStats`], [`Response::Failed`].
//!
//! One request maps to one response *frame* — except [`Request::GetBatch`],
//! which the server answers with a short stream of [`Response::BatchPart`]
//! frames (bounded chunks, the final one flagged `last`), so a whole
//! prepare-key set pipelines through one round trip without ever
//! materializing an unbounded response body. Under a tagged envelope every
//! part of the stream carries the request's tag, so a batch can interleave
//! with other in-flight exchanges.
//!
//! Every defense the on-disk entry format has, the wire has too: bad
//! magic, version mismatch, oversized length headers (bounded by
//! [`MAX_FRAME_BODY`] *before* any allocation), truncation, and checksum
//! failures all surface as a typed [`WireError`]. On top of the per-frame
//! cap, multi-frame exchanges are bounded by a **cumulative** in-flight
//! byte budget ([`FrameBudget`]): a batch of individually-legal frames
//! cannot balloon past [`MAX_CONN_INFLIGHT`] on one connection.

use crate::codec::{Dec, Enc};
use crate::entry::fnv1a;
use crate::hash::ContentHash;
use crate::plan::PlanStats;
use crate::tier::{GcReport, TierKind, TierStats};
use crate::Codec;
use std::io::{Read, Write};

/// Magic bytes opening every wire frame (distinct from the disk entry
/// magic so a file can never be replayed as a frame by accident).
pub const WIRE_MAGIC: [u8; 4] = *b"RTLW";

/// Frame-header version stamped into every frame. Historically this was
/// the on-disk `FORMAT_VERSION`; it is pinned at 2 (the value both sides
/// stamped before the two diverged) so that protocol growth does not
/// sever the wire — capability negotiation happens per opcode, not per
/// frame header. Bumping this severs every older peer at the frame level
/// (they error without answering), so it only moves when the frame *byte
/// layout* changes.
pub const FRAME_VERSION: u32 = 2;

/// Protocol generation of this build: 1 = bare-payload ops, 2 =
/// encoding-tagged data ops (`GET2`/`PUT2`/`GETM2`), 3 = tagged
/// multiplexed framing ([`op::TAGGED`]) and server-load stats
/// ([`Request::Stat2`]). Purely informational — generations are
/// negotiated per opcode (see the module docs), never stamped into frame
/// headers (that stays [`FRAME_VERSION`]).
pub const WIRE_VERSION: u32 = 3;

/// Payload-encoding tag of the v2 data opcodes: the payload bytes are a
/// [`crate::compress`] frame (mode-tagged, possibly compressed). A server
/// receiving an unknown tag answers [`Response::Miss`] (GET) or discards
/// the write (PUT) — unknown encodings degrade to miss→recompute, never
/// to garbage.
pub const PAYLOAD_ENCODING_FRAME: u8 = 1;

/// Upper bound on one frame's body, enforced before allocating: a corrupt
/// or hostile length header degrades to a protocol error, not an OOM.
pub const MAX_FRAME_BODY: u64 = 1 << 30;

/// Cumulative in-flight byte budget of one connection. The protocol is
/// strictly request → response, so at most one exchange is in flight per
/// connection at a time; this bounds the *sum* of frame bodies across a
/// multi-frame exchange (a [`Request::GetBatch`] response stream), where
/// the per-frame [`MAX_FRAME_BODY`] cap alone would still let a batch of
/// maximum-size frames balloon unboundedly.
pub const MAX_CONN_INFLIGHT: u64 = 1 << 30;

/// Upper bound on the number of keys in one [`Request::GetBatch`].
pub const MAX_BATCH_KEYS: usize = 4096;

/// Soft flush threshold of one [`Response::BatchPart`]: the server packs
/// hits into a part until its payload bytes reach this, then starts the
/// next frame — large featurize payloads stream in bounded chunks instead
/// of one giant frame. (A single payload larger than the threshold still
/// travels whole; the per-frame and cumulative caps bound it.)
pub const MAX_BATCH_CHUNK: u64 = 4 << 20;

/// Upper bound on the number of line splices in one [`Request::Edit`].
/// An editor diff never needs more than one splice per changed hunk; a
/// frame above this is hostile or corrupt, not a big edit.
pub const MAX_EDIT_SPLICES: usize = 4096;

/// Fixed frame header size: magic + version + op + body length.
pub const FRAME_HEADER: usize = 4 + 4 + 1 + 8;

/// Request opcodes.
pub mod op {
    /// Fetch a payload.
    pub const GET: u8 = 1;
    /// Store a payload.
    pub const PUT: u8 = 2;
    /// Size snapshot of the server's tiers.
    pub const STAT: u8 = 3;
    /// Evict the server's tiers down to a budget.
    pub const GC: u8 = 4;
    /// Fetch a batch of payloads in one round trip.
    pub const GETM: u8 = 5;
    /// Lease one design name from the server-held work queue.
    pub const LEASE: u8 = 6;
    /// Report a leased design prepared (or refused).
    pub const REPORT: u8 = 7;
    /// Seed/extend the server-held work queue.
    pub const PLAN: u8 = 8;
    /// Snapshot of the shard planner's counters.
    pub const PLANSTAT: u8 = 9;
    /// Fetch a payload in a tagged encoding (compress frames). Legacy
    /// servers answer `FAILED` ("request opcode"), which the client takes
    /// as its cue to fall back to [`GET`].
    pub const GET2: u8 = 10;
    /// Store a payload in a tagged encoding.
    pub const PUT2: u8 = 11;
    /// Batched fetch in a tagged encoding.
    pub const GETM2: u8 = 12;
    /// Multiplexing envelope: `tag u64 | inner op u8 | inner body`. The
    /// response(s) to the inner request come back wrapped in
    /// [`TAGGED_RESP`] envelopes carrying the same tag, so one connection
    /// holds many exchanges in flight at once. Servers older than
    /// generation 3 answer `FAILED` ("request opcode"), which the client
    /// takes as its cue to serialize exchanges instead.
    pub const TAGGED: u8 = 13;
    /// Live server-load snapshot: tier stats plus connection and
    /// in-flight exchange gauges ([`super::Response::ServerStats`]).
    pub const STAT2: u8 = 14;
    /// Open a live annotation session on a design the service knows.
    /// Artifact-store servers (and any pre-session peer) answer `FAILED`
    /// ("request opcode"), which the session client takes as its cue to
    /// annotate locally — per-opcode capability negotiation, no header
    /// bump, exactly like [`GET2`]/[`STAT2`].
    pub const OPEN: u8 = 15;
    /// Apply a line-splice diff to an open session's source mirror.
    pub const EDIT: u8 = 16;
    /// Re-annotate an open session's current source and return the
    /// annotated text in one round trip.
    pub const ANNOTATE: u8 = 17;
    /// Close a live annotation session.
    pub const CLOSE: u8 = 18;
    /// Response: payload attached.
    pub const HIT: u8 = 0x81;
    /// Response: key not held.
    pub const MISS: u8 = 0x82;
    /// Response: write/gc acknowledged.
    pub const DONE: u8 = 0x83;
    /// Response: tier stats attached.
    pub const STATS: u8 = 0x84;
    /// Response: one chunk of a batched fetch.
    pub const BATCH: u8 = 0x85;
    /// Response: a design lease was granted.
    pub const LEASED: u8 = 0x86;
    /// Response: the work queue has nothing to lease right now.
    pub const DRAINED: u8 = 0x87;
    /// Response: planner counters attached.
    pub const PLANSTATS: u8 = 0x88;
    /// Response envelope matching a [`TAGGED`] request: `tag u64 | inner
    /// op u8 | inner body`.
    pub const TAGGED_RESP: u8 = 0x89;
    /// Response: server-load snapshot attached.
    pub const SERVERSTATS: u8 = 0x8A;
    /// Response: session acknowledged (OPEN / EDIT / CLOSE).
    pub const SESSION: u8 = 0x8B;
    /// Response: annotated source attached (ANNOTATE).
    pub const ANNOTATION: u8 = 0x8C;
    /// Response: request failed server-side.
    pub const FAILED: u8 = 0xFF;
}

/// Remaining cumulative byte allowance of one connection's in-flight
/// exchange. Each budgeted frame read charges its body length *before*
/// allocating; a sequence of individually-legal frames that would sum past
/// the budget is rejected at the first offending frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameBudget {
    remaining: u64,
}

impl FrameBudget {
    /// A fresh budget of `total` cumulative body bytes.
    pub fn new(total: u64) -> FrameBudget {
        FrameBudget { remaining: total }
    }

    /// Bytes still spendable.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn charge(&mut self, len: u64) -> Result<(), WireError> {
        if len > self.remaining {
            return Err(WireError::BudgetExceeded {
                asked: len,
                remaining: self.remaining,
            });
        }
        self.remaining -= len;
        Ok(())
    }
}

/// A protocol failure. The [`crate::RemoteTier`] client maps every variant
/// to a cache miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying transport failure (connect/read/write), including
    /// truncated frames.
    Io(std::io::ErrorKind),
    /// The stream did not start with [`WIRE_MAGIC`].
    BadMagic,
    /// Peer stamps a different [`FRAME_VERSION`].
    Version(u32),
    /// Length header exceeds [`MAX_FRAME_BODY`].
    Oversized(u64),
    /// A frame's body would push the exchange past its cumulative
    /// [`FrameBudget`] — individually legal, collectively ballooning.
    BudgetExceeded {
        /// Body length the frame asked for.
        asked: u64,
        /// Budget that was left.
        remaining: u64,
    },
    /// Body checksum mismatch.
    Checksum,
    /// Body did not decode as the expected request/response shape.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind) => write!(f, "wire i/o error: {kind:?}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::Version(v) => {
                write!(f, "peer frame version {v} != ours {FRAME_VERSION}")
            }
            WireError::Oversized(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_FRAME_BODY} cap"
                )
            }
            WireError::BudgetExceeded { asked, remaining } => {
                write!(
                    f,
                    "frame body of {asked} bytes exceeds the exchange's remaining \
                     in-flight budget of {remaining} bytes"
                )
            }
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.kind())
    }
}

/// One raw frame: opcode plus body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Opcode (see [`op`]).
    pub op: u8,
    /// Body bytes (request/response specific).
    pub body: Vec<u8>,
}

impl Frame {
    /// Serializes the frame (header, body, checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(FRAME_HEADER + self.body.len() + 8);
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        bytes.push(self.op);
        bytes.extend_from_slice(&(self.body.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.body);
        bytes.extend_from_slice(&fnv1a(&self.body).to_le_bytes());
        bytes
    }

    /// Writes the frame to a stream.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), WireError> {
        w.write_all(&self.to_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one frame, validating magic, version, length bound and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; truncation surfaces as
    /// [`WireError::Io`]`(UnexpectedEof)`.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, WireError> {
        let mut header = [0u8; FRAME_HEADER];
        r.read_exact(&mut header)?;
        Self::parse_after_header(&header, r, None)
    }

    /// Like [`Frame::read_from`], but charges the body length against the
    /// exchange's cumulative [`FrameBudget`] before allocating.
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including [`WireError::BudgetExceeded`].
    pub fn read_budgeted<R: Read>(r: &mut R, budget: &mut FrameBudget) -> Result<Frame, WireError> {
        let mut header = [0u8; FRAME_HEADER];
        r.read_exact(&mut header)?;
        Self::parse_after_header(&header, r, Some(budget))
    }

    /// Like [`Frame::read_from`], but a connection closed *before any
    /// header byte* reads as `Ok(None)` — the server's idle-connection
    /// exit, distinct from a truncated frame.
    ///
    /// # Errors
    ///
    /// Same as [`Frame::read_from`].
    pub fn read_opt<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
        Self::read_opt_budgeted_impl(r, None)
    }

    /// [`Frame::read_opt`] charging the connection's cumulative
    /// [`FrameBudget`].
    ///
    /// # Errors
    ///
    /// Same as [`Frame::read_opt`], plus [`WireError::BudgetExceeded`].
    pub fn read_opt_budgeted<R: Read>(
        r: &mut R,
        budget: &mut FrameBudget,
    ) -> Result<Option<Frame>, WireError> {
        Self::read_opt_budgeted_impl(r, Some(budget))
    }

    fn read_opt_budgeted_impl<R: Read>(
        r: &mut R,
        budget: Option<&mut FrameBudget>,
    ) -> Result<Option<Frame>, WireError> {
        let mut first = [0u8; 1];
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => return Err(e.into()),
        }
        let mut rest = [0u8; FRAME_HEADER - 1];
        r.read_exact(&mut rest)?;
        let mut header = [0u8; FRAME_HEADER];
        header[0] = first[0];
        header[1..].copy_from_slice(&rest);
        Self::parse_after_header(&header, r, budget).map(Some)
    }

    fn parse_after_header<R: Read>(
        header: &[u8; FRAME_HEADER],
        r: &mut R,
        budget: Option<&mut FrameBudget>,
    ) -> Result<Frame, WireError> {
        if header[..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != FRAME_VERSION {
            return Err(WireError::Version(version));
        }
        let op = header[8];
        let len = u64::from_le_bytes(header[9..17].try_into().expect("8 bytes"));
        if len > MAX_FRAME_BODY {
            return Err(WireError::Oversized(len));
        }
        if let Some(budget) = budget {
            // Charged before the allocation below, for the same reason the
            // per-frame cap is: the budget defends the reader's memory.
            budget.charge(len)?;
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        let mut trailer = [0u8; 8];
        r.read_exact(&mut trailer)?;
        if fnv1a(&body) != u64::from_le_bytes(trailer) {
            return Err(WireError::Checksum);
        }
        Ok(Frame { op, body })
    }
}

/// Wraps a request frame in a generation-3 multiplexing envelope: the
/// returned [`op::TAGGED`] frame carries `tag`, the inner opcode and the
/// inner body. The server answers with one or more [`op::TAGGED_RESP`]
/// frames carrying the same tag.
pub fn tag_request(tag: u64, inner: &Frame) -> Frame {
    tag_with(op::TAGGED, tag, inner)
}

/// Wraps a response frame in a [`op::TAGGED_RESP`] envelope carrying
/// `tag` — the server side of [`tag_request`].
pub fn tag_response(tag: u64, inner: &Frame) -> Frame {
    tag_with(op::TAGGED_RESP, tag, inner)
}

fn tag_with(envelope_op: u8, tag: u64, inner: &Frame) -> Frame {
    let mut body = Vec::with_capacity(8 + 1 + inner.body.len());
    body.extend_from_slice(&tag.to_le_bytes());
    body.push(inner.op);
    body.extend_from_slice(&inner.body);
    Frame {
        op: envelope_op,
        body,
    }
}

/// Unwraps a [`op::TAGGED`]/[`op::TAGGED_RESP`] envelope into its tag and
/// inner frame.
///
/// # Errors
///
/// [`WireError::Malformed`] when `frame` is not an envelope or its body is
/// too short to carry a tag and an inner opcode.
pub fn untag(frame: &Frame) -> Result<(u64, Frame), WireError> {
    if frame.op != op::TAGGED && frame.op != op::TAGGED_RESP {
        return Err(WireError::Malformed("not a tagged envelope"));
    }
    if frame.body.len() < 9 {
        return Err(WireError::Malformed("tagged envelope too short"));
    }
    let tag = u64::from_le_bytes(frame.body[..8].try_into().expect("8 bytes"));
    Ok((
        tag,
        Frame {
            op: frame.body[8],
            body: frame.body[9..].to_vec(),
        },
    ))
}

/// Incremental frame parser over a growing byte buffer — the nonblocking
/// event loop's (and any buffer-driven transport's) replacement for the
/// blocking [`Frame::read_from`]. Bytes arrive in arbitrary chunks via
/// [`FrameReassembler::ingest`]; [`FrameReassembler::next_frame`] yields
/// each complete frame and `Ok(None)` while a frame is still partial,
/// applying exactly the header checks the blocking reader does (magic,
/// version, length bound *before* the body is even buffered, checksum).
#[derive(Debug, Default)]
pub struct FrameReassembler {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReassembler {
    /// An empty reassembler.
    pub fn new() -> FrameReassembler {
        FrameReassembler::default()
    }

    /// Appends freshly-read bytes to the buffer.
    pub fn ingest(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` was already
        // consumed by returned frames.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > (64 << 10)) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame out of the buffer. `Ok(None)` means
    /// "need more bytes" — a partial header or partial body is not an
    /// error until the connection itself ends.
    ///
    /// # Errors
    ///
    /// The same header/checksum failures as [`Frame::read_from`]; the
    /// connection that produced them should be dropped, since the stream
    /// can no longer be framed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        // Validate the header before waiting for (or buffering) a body:
        // a corrupt length field must fail now, not after a gigabyte of
        // "body" accumulates.
        if avail[..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        if version != FRAME_VERSION {
            return Err(WireError::Version(version));
        }
        let op = avail[8];
        let len = u64::from_le_bytes(avail[9..17].try_into().expect("8 bytes"));
        if len > MAX_FRAME_BODY {
            return Err(WireError::Oversized(len));
        }
        let total = FRAME_HEADER + len as usize + 8;
        if avail.len() < total {
            return Ok(None);
        }
        let body = &avail[FRAME_HEADER..FRAME_HEADER + len as usize];
        let trailer = &avail[FRAME_HEADER + len as usize..total];
        if fnv1a(body) != u64::from_le_bytes(trailer.try_into().expect("8 bytes")) {
            return Err(WireError::Checksum);
        }
        let frame = Frame {
            op,
            body: body.to_vec(),
        };
        self.pos += total;
        Ok(Some(frame))
    }
}

fn enc_payload(e: &mut Enc, payload: &[u8]) {
    e.usize(payload.len());
    e.raw(payload);
}

fn dec_payload(d: &mut Dec<'_>) -> Result<Vec<u8>, WireError> {
    let n = d.usize().map_err(|_| WireError::Malformed("payload len"))?;
    if n > d.remaining() {
        return Err(WireError::Malformed("payload len"));
    }
    Ok(d.raw(n)
        .map_err(|_| WireError::Malformed("payload"))?
        .to_vec())
}

/// Live load snapshot of an `rtlt-stored` server, answered to
/// [`Request::Stat2`]: the tier sizes the plain STAT reports, plus the
/// event loop's connection and in-flight gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerLoad {
    /// Size snapshots of the server's tiers, in fallback order.
    pub tiers: Vec<TierStats>,
    /// Connections currently open on the event loop.
    pub connections: u64,
    /// Exchanges accepted but not yet fully flushed back to their peers.
    pub inflight: u64,
    /// Protocol generation of the server build ([`WIRE_VERSION`]).
    pub wire_version: u32,
}

/// One contiguous line replacement of a [`Request::Edit`]: delete
/// `delete` lines starting at line index `at` (0-based, lines including
/// their terminators) and insert `insert` verbatim in their place.
/// Splices in one edit are ordered by `at` and non-overlapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditSplice {
    /// 0-based index of the first replaced line.
    pub at: u64,
    /// Number of lines deleted at `at`.
    pub delete: u64,
    /// Replacement text, inserted verbatim (may span many lines).
    pub insert: String,
}

/// Body of a [`Response::Annotation`]: the re-annotated source plus the
/// same invalidation accounting a local
/// `IncrementalAnnotator::reannotate` reports, so remote and local passes
/// are comparable field by field.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationReply {
    /// The fully annotated source text.
    pub annotated: String,
    /// Modules whose text changed since the previous revision.
    pub dirty_modules: Vec<String>,
    /// Signals whose cones may overlap the dirty modules.
    pub dirty_cone_bound: u64,
    /// Cone shards recomputed for this pass.
    pub dirty_shards: u64,
    /// Cone shards served from cache.
    pub reused_shards: u64,
    /// Total shards the design evaluates (signals × variants).
    pub total_shards: u64,
}

/// A client→server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the payload under `(ns, key)`.
    Get {
        /// Stage namespace.
        ns: String,
        /// Content key.
        key: ContentHash,
    },
    /// Store `payload` under `(ns, key)`.
    Put {
        /// Stage namespace.
        ns: String,
        /// Content key.
        key: ContentHash,
        /// Artifact payload bytes.
        payload: Vec<u8>,
    },
    /// Fetch the payloads under a whole `(ns, key)` set in one round trip.
    /// Answered by a stream of [`Response::BatchPart`] frames.
    GetBatch {
        /// `(namespace, key)` pairs, at most [`MAX_BATCH_KEYS`].
        items: Vec<(String, ContentHash)>,
    },
    /// Size snapshot of the server's tiers.
    Stat,
    /// Live load snapshot ([`ServerLoad`]): tier sizes plus connection and
    /// in-flight gauges. Servers older than generation 3 answer `Failed`;
    /// the client reads that as "no load data", never as an error.
    Stat2,
    /// Evict the server's tiers down to `budget_bytes`.
    Gc {
        /// Target size in bytes.
        budget_bytes: u64,
    },
    /// Lease one design name from the server's work queue.
    Lease {
        /// Stable worker identity (lease bookkeeping + refusal memory).
        worker: String,
    },
    /// Report the outcome of a leased design.
    Report {
        /// The reporting worker.
        worker: String,
        /// The leased design name.
        design: String,
        /// Observed prepare wall time (feeds the planner's cost model).
        seconds: f64,
        /// `true` = prepared; `false` = this worker cannot serve the
        /// design (e.g. version skew) — the server re-queues it for
        /// someone else.
        ok: bool,
    },
    /// Seed/extend the server's work queue with design names and expected
    /// prepare costs (idempotent union — every fleet worker submits the
    /// same plan on startup). The `epoch` identifies the *content* of the
    /// run (a hash over the designs' prepare keys): a plan with a new
    /// epoch resets the planner's completion memory, so a long-lived
    /// server serves run after run instead of answering every post-edit
    /// fleet with "already done".
    Plan {
        /// Content epoch of this fleet run.
        epoch: u64,
        /// `(design name, expected cost in seconds)` pairs.
        designs: Vec<(String, f64)>,
    },
    /// Snapshot of the shard planner's counters.
    PlanStat,
    /// Fetch the payload under `(ns, key)` in the tagged encoding. The
    /// response's `Hit` payload is encoded per `encoding` (only
    /// [`PAYLOAD_ENCODING_FRAME`] exists today); a server that does not
    /// recognize `encoding` answers `Miss`.
    Get2 {
        /// Stage namespace.
        ns: String,
        /// Content key.
        key: ContentHash,
        /// Payload encoding tag ([`PAYLOAD_ENCODING_FRAME`]).
        encoding: u8,
    },
    /// Store `payload` (encoded per `encoding`) under `(ns, key)`. A
    /// server that does not recognize `encoding` acknowledges without
    /// storing — a lost write, never a corrupt one.
    Put2 {
        /// Stage namespace.
        ns: String,
        /// Content key.
        key: ContentHash,
        /// Payload encoding tag ([`PAYLOAD_ENCODING_FRAME`]).
        encoding: u8,
        /// Payload bytes in the tagged encoding.
        payload: Vec<u8>,
    },
    /// Batched fetch with every hit payload in the tagged encoding.
    /// Answered by a stream of [`Response::BatchPart`] frames, like
    /// [`Request::GetBatch`].
    GetBatch2 {
        /// `(namespace, key)` pairs, at most [`MAX_BATCH_KEYS`].
        items: Vec<(String, ContentHash)>,
        /// Payload encoding tag ([`PAYLOAD_ENCODING_FRAME`]).
        encoding: u8,
    },
    /// Open a live annotation session on `design`. The service must
    /// already hold a prepared base for the design; `source` seeds the
    /// session's source mirror (empty = use the service's base source).
    /// Answered by [`Response::Session`]. Peers without session support
    /// answer `Failed` and the client annotates locally.
    Open {
        /// Design name, as prepared on the service.
        design: String,
        /// Initial source text ("" = service's base source).
        source: String,
    },
    /// Apply `splices` to session `session`'s source mirror. `check` is
    /// the FNV-1a hash of the full post-edit source; a mismatch (client
    /// and server mirrors diverged) refuses the edit and leaves the
    /// session's source untouched. Answered by [`Response::Session`].
    Edit {
        /// Session id from [`Response::Session`].
        session: u64,
        /// Ordered, non-overlapping line splices.
        splices: Vec<EditSplice>,
        /// FNV-1a of the expected post-edit source.
        check: u64,
    },
    /// Re-annotate session `session`'s current source. Answered by
    /// [`Response::Annotation`] once the (chunked, fair-scheduled)
    /// re-annotation completes.
    Annotate {
        /// Session id from [`Response::Session`].
        session: u64,
    },
    /// Close session `session`, dropping its server-side state.
    /// Answered by [`Response::Session`] (final revision).
    Close {
        /// Session id from [`Response::Session`].
        session: u64,
    },
}

impl Request {
    /// Serializes into a frame.
    pub fn to_frame(&self) -> Frame {
        let mut e = Enc::new();
        let op = match self {
            Request::Get { ns, key } => {
                e.str(ns);
                key.encode(&mut e);
                op::GET
            }
            Request::Put { ns, key, payload } => {
                e.str(ns);
                key.encode(&mut e);
                enc_payload(&mut e, payload);
                op::PUT
            }
            Request::GetBatch { items } => {
                e.seq_len(items.len());
                for (ns, key) in items {
                    e.str(ns);
                    key.encode(&mut e);
                }
                op::GETM
            }
            Request::Stat => op::STAT,
            Request::Stat2 => op::STAT2,
            Request::Gc { budget_bytes } => {
                e.u64(*budget_bytes);
                op::GC
            }
            Request::Lease { worker } => {
                e.str(worker);
                op::LEASE
            }
            Request::Report {
                worker,
                design,
                seconds,
                ok,
            } => {
                e.str(worker);
                e.str(design);
                e.f64(*seconds);
                e.bool(*ok);
                op::REPORT
            }
            Request::Plan { epoch, designs } => {
                e.u64(*epoch);
                e.seq_len(designs.len());
                for (name, cost) in designs {
                    e.str(name);
                    e.f64(*cost);
                }
                op::PLAN
            }
            Request::PlanStat => op::PLANSTAT,
            Request::Get2 { ns, key, encoding } => {
                e.str(ns);
                key.encode(&mut e);
                e.u8(*encoding);
                op::GET2
            }
            Request::Put2 {
                ns,
                key,
                encoding,
                payload,
            } => {
                e.str(ns);
                key.encode(&mut e);
                e.u8(*encoding);
                enc_payload(&mut e, payload);
                op::PUT2
            }
            Request::GetBatch2 { items, encoding } => {
                e.u8(*encoding);
                e.seq_len(items.len());
                for (ns, key) in items {
                    e.str(ns);
                    key.encode(&mut e);
                }
                op::GETM2
            }
            Request::Open { design, source } => {
                e.str(design);
                e.str(source);
                op::OPEN
            }
            Request::Edit {
                session,
                splices,
                check,
            } => {
                e.u64(*session);
                e.u64(*check);
                e.seq_len(splices.len());
                for s in splices {
                    e.u64(s.at);
                    e.u64(s.delete);
                    e.str(&s.insert);
                }
                op::EDIT
            }
            Request::Annotate { session } => {
                e.u64(*session);
                op::ANNOTATE
            }
            Request::Close { session } => {
                e.u64(*session);
                op::CLOSE
            }
        };
        Frame {
            op,
            body: e.into_bytes(),
        }
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown opcodes or bodies that do not
    /// decode as the opcode's shape.
    pub fn from_frame(frame: &Frame) -> Result<Request, WireError> {
        let mut d = Dec::new(&frame.body);
        let req = match frame.op {
            op::GET => Request::Get {
                ns: d.str().map_err(|_| WireError::Malformed("get ns"))?,
                key: ContentHash::decode(&mut d).map_err(|_| WireError::Malformed("get key"))?,
            },
            op::PUT => Request::Put {
                ns: d.str().map_err(|_| WireError::Malformed("put ns"))?,
                key: ContentHash::decode(&mut d).map_err(|_| WireError::Malformed("put key"))?,
                payload: dec_payload(&mut d)?,
            },
            op::GETM => {
                let n = d
                    .seq_len(1 + 32)
                    .map_err(|_| WireError::Malformed("batch len"))?;
                if n > MAX_BATCH_KEYS {
                    return Err(WireError::Malformed("batch key count"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let ns = d.str().map_err(|_| WireError::Malformed("batch ns"))?;
                    let key = ContentHash::decode(&mut d)
                        .map_err(|_| WireError::Malformed("batch key"))?;
                    items.push((ns, key));
                }
                Request::GetBatch { items }
            }
            op::STAT => Request::Stat,
            op::STAT2 => Request::Stat2,
            op::GC => Request::Gc {
                budget_bytes: d.u64().map_err(|_| WireError::Malformed("gc budget"))?,
            },
            op::LEASE => Request::Lease {
                worker: d.str().map_err(|_| WireError::Malformed("lease worker"))?,
            },
            op::REPORT => Request::Report {
                worker: d.str().map_err(|_| WireError::Malformed("report worker"))?,
                design: d.str().map_err(|_| WireError::Malformed("report design"))?,
                seconds: d
                    .f64()
                    .map_err(|_| WireError::Malformed("report seconds"))?,
                ok: d.bool().map_err(|_| WireError::Malformed("report ok"))?,
            },
            op::PLAN => {
                let epoch = d.u64().map_err(|_| WireError::Malformed("plan epoch"))?;
                let n = d
                    .seq_len(1 + 8)
                    .map_err(|_| WireError::Malformed("plan len"))?;
                let mut designs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = d.str().map_err(|_| WireError::Malformed("plan name"))?;
                    let cost = d.f64().map_err(|_| WireError::Malformed("plan cost"))?;
                    designs.push((name, cost));
                }
                Request::Plan { epoch, designs }
            }
            op::PLANSTAT => Request::PlanStat,
            op::GET2 => Request::Get2 {
                ns: d.str().map_err(|_| WireError::Malformed("get2 ns"))?,
                key: ContentHash::decode(&mut d).map_err(|_| WireError::Malformed("get2 key"))?,
                encoding: d.u8().map_err(|_| WireError::Malformed("get2 encoding"))?,
            },
            op::PUT2 => Request::Put2 {
                ns: d.str().map_err(|_| WireError::Malformed("put2 ns"))?,
                key: ContentHash::decode(&mut d).map_err(|_| WireError::Malformed("put2 key"))?,
                encoding: d.u8().map_err(|_| WireError::Malformed("put2 encoding"))?,
                payload: dec_payload(&mut d)?,
            },
            op::GETM2 => {
                let encoding = d
                    .u8()
                    .map_err(|_| WireError::Malformed("batch2 encoding"))?;
                let n = d
                    .seq_len(1 + 32)
                    .map_err(|_| WireError::Malformed("batch2 len"))?;
                if n > MAX_BATCH_KEYS {
                    return Err(WireError::Malformed("batch key count"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let ns = d.str().map_err(|_| WireError::Malformed("batch2 ns"))?;
                    let key = ContentHash::decode(&mut d)
                        .map_err(|_| WireError::Malformed("batch2 key"))?;
                    items.push((ns, key));
                }
                Request::GetBatch2 { items, encoding }
            }
            op::OPEN => Request::Open {
                design: d.str().map_err(|_| WireError::Malformed("open design"))?,
                source: d.str().map_err(|_| WireError::Malformed("open source"))?,
            },
            op::EDIT => {
                let session = d.u64().map_err(|_| WireError::Malformed("edit session"))?;
                let check = d.u64().map_err(|_| WireError::Malformed("edit check"))?;
                let n = d
                    .seq_len(8 + 8 + 4)
                    .map_err(|_| WireError::Malformed("edit len"))?;
                if n > MAX_EDIT_SPLICES {
                    return Err(WireError::Malformed("edit splice count"));
                }
                let mut splices = Vec::with_capacity(n);
                for _ in 0..n {
                    let at = d.u64().map_err(|_| WireError::Malformed("splice at"))?;
                    let delete = d.u64().map_err(|_| WireError::Malformed("splice delete"))?;
                    let insert = d.str().map_err(|_| WireError::Malformed("splice insert"))?;
                    splices.push(EditSplice { at, delete, insert });
                }
                Request::Edit {
                    session,
                    splices,
                    check,
                }
            }
            op::ANNOTATE => Request::Annotate {
                session: d
                    .u64()
                    .map_err(|_| WireError::Malformed("annotate session"))?,
            },
            op::CLOSE => Request::Close {
                session: d.u64().map_err(|_| WireError::Malformed("close session"))?,
            },
            _ => return Err(WireError::Malformed("request opcode")),
        };
        if !d.is_finished() {
            return Err(WireError::Malformed("trailing request bytes"));
        }
        Ok(req)
    }
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The key was held; payload attached.
    Hit(Vec<u8>),
    /// The key was not held.
    Miss,
    /// One chunk of a [`Request::GetBatch`] answer: `(index, payload)`
    /// pairs by request position (`None` = that key missed). The final
    /// chunk of the stream is flagged `last`.
    BatchPart {
        /// `(request index, payload-or-miss)` pairs of this chunk.
        items: Vec<(u64, Option<Vec<u8>>)>,
        /// Whether this is the stream's final chunk.
        last: bool,
    },
    /// Write/gc acknowledged; gc responses carry the eviction report.
    Done(GcReport),
    /// Tier size snapshot.
    Stats(Vec<TierStats>),
    /// Live server-load snapshot ([`Request::Stat2`]).
    ServerStats(ServerLoad),
    /// A design lease was granted.
    Leased {
        /// The leased design name.
        design: String,
    },
    /// Nothing leasable right now. `outstanding` counts designs neither
    /// completed nor abandoned — `0` means the whole plan is done and the
    /// worker can exit; `> 0` means other workers still hold leases (poll
    /// again: an expired lease re-queues).
    Drained {
        /// Designs not yet completed or abandoned.
        outstanding: u64,
    },
    /// Shard-planner counters.
    PlanStats(PlanStats),
    /// A session verb was acknowledged (OPEN / EDIT / CLOSE).
    Session {
        /// Session id (allocated by OPEN, echoed afterwards).
        session: u64,
        /// Edit revision of the session's source mirror (0 after OPEN,
        /// bumped by every accepted EDIT).
        revision: u64,
        /// FNV-1a of the server's current session source — lets the
        /// client verify both mirrors agree without re-sending the text.
        check: u64,
    },
    /// The annotated source for a completed ANNOTATE.
    Annotation(AnnotationReply),
    /// The request failed server-side (the client treats this as a miss).
    Failed(String),
}

fn enc_tier_kind(e: &mut Enc, kind: TierKind) {
    e.u8(match kind {
        TierKind::Memory => 0,
        TierKind::Disk => 1,
        TierKind::Remote => 2,
    });
}

fn dec_tier_kind(d: &mut Dec<'_>) -> Result<TierKind, WireError> {
    match d.u8().map_err(|_| WireError::Malformed("tier kind"))? {
        0 => Ok(TierKind::Memory),
        1 => Ok(TierKind::Disk),
        2 => Ok(TierKind::Remote),
        _ => Err(WireError::Malformed("tier kind tag")),
    }
}

fn enc_tier_stats(e: &mut Enc, tiers: &[TierStats]) {
    e.seq_len(tiers.len());
    for t in tiers {
        enc_tier_kind(e, t.kind);
        e.str(&t.detail);
        e.u64(t.entries);
        e.u64(t.bytes);
        e.bool(t.reachable);
    }
}

fn dec_tier_stats(d: &mut Dec<'_>) -> Result<Vec<TierStats>, WireError> {
    let n = d
        .seq_len(2)
        .map_err(|_| WireError::Malformed("stats len"))?;
    let mut tiers = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = dec_tier_kind(d)?;
        let detail = d.str().map_err(|_| WireError::Malformed("tier detail"))?;
        let entries = d.u64().map_err(|_| WireError::Malformed("tier entries"))?;
        let bytes = d.u64().map_err(|_| WireError::Malformed("tier bytes"))?;
        let reachable = d.bool().map_err(|_| WireError::Malformed("tier flag"))?;
        tiers.push(TierStats {
            kind,
            detail,
            entries,
            bytes,
            reachable,
        });
    }
    Ok(tiers)
}

impl Response {
    /// Serializes into a frame.
    pub fn to_frame(&self) -> Frame {
        let mut e = Enc::new();
        let op = match self {
            Response::Hit(payload) => {
                enc_payload(&mut e, payload);
                op::HIT
            }
            Response::Miss => op::MISS,
            Response::BatchPart { items, last } => {
                e.bool(*last);
                e.seq_len(items.len());
                for (idx, payload) in items {
                    e.u64(*idx);
                    match payload {
                        Some(p) => {
                            e.bool(true);
                            enc_payload(&mut e, p);
                        }
                        None => e.bool(false),
                    }
                }
                op::BATCH
            }
            Response::Done(r) => {
                e.u64(r.scanned_files);
                e.u64(r.scanned_bytes);
                e.u64(r.evicted_files);
                e.u64(r.evicted_bytes);
                e.u64(r.remaining_bytes);
                op::DONE
            }
            Response::Stats(tiers) => {
                enc_tier_stats(&mut e, tiers);
                op::STATS
            }
            Response::ServerStats(load) => {
                enc_tier_stats(&mut e, &load.tiers);
                e.u64(load.connections);
                e.u64(load.inflight);
                e.u32(load.wire_version);
                op::SERVERSTATS
            }
            Response::Leased { design } => {
                e.str(design);
                op::LEASED
            }
            Response::Drained { outstanding } => {
                e.u64(*outstanding);
                op::DRAINED
            }
            Response::PlanStats(p) => {
                e.u64(p.planned);
                e.u64(p.completed);
                e.u64(p.abandoned);
                e.u64(p.active_leases);
                e.u64(p.leases_granted);
                e.u64(p.requeued);
                e.u64(p.refused);
                e.u64(p.workers);
                op::PLANSTATS
            }
            Response::Session {
                session,
                revision,
                check,
            } => {
                e.u64(*session);
                e.u64(*revision);
                e.u64(*check);
                op::SESSION
            }
            Response::Annotation(a) => {
                e.str(&a.annotated);
                e.seq_len(a.dirty_modules.len());
                for m in &a.dirty_modules {
                    e.str(m);
                }
                e.u64(a.dirty_cone_bound);
                e.u64(a.dirty_shards);
                e.u64(a.reused_shards);
                e.u64(a.total_shards);
                op::ANNOTATION
            }
            Response::Failed(msg) => {
                e.str(msg);
                op::FAILED
            }
        };
        Frame {
            op,
            body: e.into_bytes(),
        }
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown opcodes or mis-shaped bodies.
    pub fn from_frame(frame: &Frame) -> Result<Response, WireError> {
        let mut d = Dec::new(&frame.body);
        let resp = match frame.op {
            op::HIT => Response::Hit(dec_payload(&mut d)?),
            op::MISS => Response::Miss,
            op::BATCH => {
                let last = d.bool().map_err(|_| WireError::Malformed("batch last"))?;
                let n = d
                    .seq_len(8 + 1)
                    .map_err(|_| WireError::Malformed("batch part len"))?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let idx = d.u64().map_err(|_| WireError::Malformed("batch idx"))?;
                    let hit = d.bool().map_err(|_| WireError::Malformed("batch flag"))?;
                    let payload = if hit {
                        Some(dec_payload(&mut d)?)
                    } else {
                        None
                    };
                    items.push((idx, payload));
                }
                Response::BatchPart { items, last }
            }
            op::DONE => {
                let mut next = || d.u64().map_err(|_| WireError::Malformed("gc report"));
                Response::Done(GcReport {
                    scanned_files: next()?,
                    scanned_bytes: next()?,
                    evicted_files: next()?,
                    evicted_bytes: next()?,
                    remaining_bytes: next()?,
                })
            }
            op::STATS => Response::Stats(dec_tier_stats(&mut d)?),
            op::SERVERSTATS => Response::ServerStats(ServerLoad {
                tiers: dec_tier_stats(&mut d)?,
                connections: d.u64().map_err(|_| WireError::Malformed("connections"))?,
                inflight: d.u64().map_err(|_| WireError::Malformed("inflight"))?,
                wire_version: d.u32().map_err(|_| WireError::Malformed("wire version"))?,
            }),
            op::LEASED => Response::Leased {
                design: d.str().map_err(|_| WireError::Malformed("leased design"))?,
            },
            op::DRAINED => Response::Drained {
                outstanding: d.u64().map_err(|_| WireError::Malformed("outstanding"))?,
            },
            op::PLANSTATS => {
                let mut next = || d.u64().map_err(|_| WireError::Malformed("plan stats"));
                Response::PlanStats(PlanStats {
                    planned: next()?,
                    completed: next()?,
                    abandoned: next()?,
                    active_leases: next()?,
                    leases_granted: next()?,
                    requeued: next()?,
                    refused: next()?,
                    workers: next()?,
                })
            }
            op::SESSION => Response::Session {
                session: d.u64().map_err(|_| WireError::Malformed("session id"))?,
                revision: d
                    .u64()
                    .map_err(|_| WireError::Malformed("session revision"))?,
                check: d.u64().map_err(|_| WireError::Malformed("session check"))?,
            },
            op::ANNOTATION => {
                let annotated = d
                    .str()
                    .map_err(|_| WireError::Malformed("annotation text"))?;
                let n = d
                    .seq_len(8)
                    .map_err(|_| WireError::Malformed("annotation modules len"))?;
                let mut dirty_modules = Vec::with_capacity(n);
                for _ in 0..n {
                    dirty_modules.push(
                        d.str()
                            .map_err(|_| WireError::Malformed("annotation module"))?,
                    );
                }
                let mut next = || {
                    d.u64()
                        .map_err(|_| WireError::Malformed("annotation counters"))
                };
                Response::Annotation(AnnotationReply {
                    annotated,
                    dirty_modules,
                    dirty_cone_bound: next()?,
                    dirty_shards: next()?,
                    reused_shards: next()?,
                    total_shards: next()?,
                })
            }
            op::FAILED => {
                Response::Failed(d.str().map_err(|_| WireError::Malformed("error message"))?)
            }
            _ => return Err(WireError::Malformed("response opcode")),
        };
        if !d.is_finished() {
            return Err(WireError::Malformed("trailing response bytes"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;

    fn frame_round_trip(frame: &Frame) -> Frame {
        let bytes = frame.to_bytes();
        Frame::read_from(&mut bytes.as_slice()).expect("round trip")
    }

    #[test]
    fn request_frames_round_trip() {
        let key = KeyBuilder::new("wire").u64(1).finish();
        for req in [
            Request::Get {
                ns: "featurize".into(),
                key,
            },
            Request::Put {
                ns: "blast".into(),
                key,
                payload: vec![0, 1, 2, 255],
            },
            Request::Put {
                ns: "empty".into(),
                key,
                payload: Vec::new(),
            },
            Request::GetBatch {
                items: vec![("featurize".into(), key), ("blast".into(), key)],
            },
            Request::GetBatch { items: Vec::new() },
            Request::Stat,
            Request::Stat2,
            Request::Gc { budget_bytes: 42 },
            Request::Lease {
                worker: "worker-a".into(),
            },
            Request::Report {
                worker: "worker-a".into(),
                design: "b17".into(),
                seconds: 1.25,
                ok: true,
            },
            Request::Plan {
                epoch: 0xDEAD_BEEF,
                designs: vec![("b17".into(), 3.5), ("b18".into(), 0.0)],
            },
            Request::PlanStat,
            Request::Get2 {
                ns: "featurize".into(),
                key,
                encoding: PAYLOAD_ENCODING_FRAME,
            },
            Request::Put2 {
                ns: "featurize".into(),
                key,
                encoding: PAYLOAD_ENCODING_FRAME,
                payload: vec![0, 99, 1],
            },
            Request::GetBatch2 {
                items: vec![("featurize".into(), key), ("blast".into(), key)],
                encoding: PAYLOAD_ENCODING_FRAME,
            },
            Request::GetBatch2 {
                items: Vec::new(),
                encoding: 200,
            },
            Request::Open {
                design: "hier_soc".into(),
                source: "module top; endmodule\n".into(),
            },
            Request::Open {
                design: "hier_soc".into(),
                source: String::new(),
            },
            Request::Edit {
                session: 7,
                splices: vec![
                    EditSplice {
                        at: 0,
                        delete: 2,
                        insert: "wire x;\n".into(),
                    },
                    EditSplice {
                        at: 5,
                        delete: 0,
                        insert: String::new(),
                    },
                ],
                check: 0xFEED_FACE,
            },
            Request::Edit {
                session: 0,
                splices: Vec::new(),
                check: 0,
            },
            Request::Annotate { session: 9 },
            Request::Close { session: u64::MAX },
        ] {
            let frame = req.to_frame();
            let back = Request::from_frame(&frame_round_trip(&frame)).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn legacy_peers_reject_v2_opcodes_as_malformed() {
        // What a pre-compression server does with a GET2 frame: the frame
        // itself reads fine (same WIRE_VERSION), but the opcode is unknown,
        // which `serve_connection` turns into `Response::Failed` — the
        // client's signal to fall back to the v1 ops.
        let key = KeyBuilder::new("wire").u64(3).finish();
        let frame = Request::Get2 {
            ns: "featurize".into(),
            key,
            encoding: PAYLOAD_ENCODING_FRAME,
        }
        .to_frame();
        let read = frame_round_trip(&frame);
        assert_eq!(read.op, op::GET2);
        // A legacy `Request::from_frame` has no arm for op 10..=12; the
        // current one decodes it, so emulate the legacy dispatch here.
        assert!(read.op > op::PLANSTAT, "v2 opcodes sit above the v1 range");
    }

    #[test]
    fn response_frames_round_trip() {
        for resp in [
            Response::Hit(vec![9; 100]),
            Response::Miss,
            Response::Done(GcReport {
                scanned_files: 1,
                scanned_bytes: 2,
                evicted_files: 3,
                evicted_bytes: 4,
                remaining_bytes: 5,
            }),
            Response::Stats(vec![TierStats {
                kind: TierKind::Disk,
                detail: "/tmp/x".into(),
                entries: 7,
                bytes: 8,
                reachable: true,
            }]),
            Response::ServerStats(ServerLoad {
                tiers: vec![TierStats {
                    kind: TierKind::Memory,
                    detail: "mem".into(),
                    entries: 3,
                    bytes: 4096,
                    reachable: true,
                }],
                connections: 5,
                inflight: 2,
                wire_version: WIRE_VERSION,
            }),
            Response::BatchPart {
                items: vec![(0, Some(vec![1, 2, 3])), (1, None), (7, Some(Vec::new()))],
                last: false,
            },
            Response::BatchPart {
                items: Vec::new(),
                last: true,
            },
            Response::Leased {
                design: "b17".into(),
            },
            Response::Drained { outstanding: 3 },
            Response::PlanStats(PlanStats {
                planned: 21,
                completed: 20,
                abandoned: 0,
                active_leases: 1,
                leases_granted: 22,
                requeued: 1,
                refused: 0,
                workers: 2,
            }),
            Response::Session {
                session: 3,
                revision: 12,
                check: 0xABCD,
            },
            Response::Annotation(AnnotationReply {
                annotated: "// slack -0.1\nmodule top; endmodule\n".into(),
                dirty_modules: vec!["lane3".into(), "lane4".into()],
                dirty_cone_bound: 9,
                dirty_shards: 4,
                reused_shards: 144,
                total_shards: 148,
            }),
            Response::Annotation(AnnotationReply {
                annotated: String::new(),
                dirty_modules: Vec::new(),
                dirty_cone_bound: 0,
                dirty_shards: 0,
                reused_shards: 0,
                total_shards: 0,
            }),
            Response::Failed("nope".into()),
        ] {
            let frame = resp.to_frame();
            let back = Response::from_frame(&frame_round_trip(&frame)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn session_frames_reject_truncation_and_splice_floods() {
        // Every strict prefix of an EDIT body fails to decode — a cut
        // anywhere in the splice list is a malformed frame, never a
        // shorter edit.
        let edit = Request::Edit {
            session: 1,
            splices: vec![EditSplice {
                at: 3,
                delete: 1,
                insert: "assign y = x ^ (x >> 3);\n".into(),
            }],
            check: 42,
        }
        .to_frame();
        for cut in 0..edit.body.len() {
            let trimmed = Frame {
                op: op::EDIT,
                body: edit.body[..cut].to_vec(),
            };
            assert!(Request::from_frame(&trimmed).is_err(), "cut {cut}");
        }
        // Trailing bytes after a well-formed body are rejected too.
        let mut padded = edit.body.clone();
        padded.push(0);
        assert_eq!(
            Request::from_frame(&Frame {
                op: op::EDIT,
                body: padded,
            }),
            Err(WireError::Malformed("trailing request bytes"))
        );
        // A splice count above the cap is refused before any allocation,
        // whether the body backs it or not.
        let mut e = Enc::new();
        e.u64(1);
        e.u64(0);
        e.seq_len(MAX_EDIT_SPLICES + 1);
        assert!(matches!(
            Request::from_frame(&Frame {
                op: op::EDIT,
                body: e.into_bytes(),
            }),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn session_opcodes_sit_in_the_negotiable_range() {
        // Pre-session peers (the artifact store's `serve_connection`)
        // answer unknown opcodes with `Failed` on a live connection; the
        // session verbs rely on that, exactly like GET2/STAT2 before
        // them. A header version bump would instead kill the connection.
        for req in [
            Request::Open {
                design: "d".into(),
                source: String::new(),
            },
            Request::Annotate { session: 0 },
        ] {
            let frame = req.to_frame();
            assert!(frame.op > op::STAT2, "session verbs extend the range");
            // The frame itself reads fine under the pinned header version.
            assert_eq!(frame_round_trip(&frame), frame);
        }
    }

    #[test]
    fn oversized_batch_request_is_malformed() {
        // A well-formed GETM with one key too many is rejected at decode,
        // before any per-key work.
        let key = KeyBuilder::new("wire").u64(9).finish();
        let frame = Request::GetBatch {
            items: (0..=MAX_BATCH_KEYS).map(|_| (String::new(), key)).collect(),
        }
        .to_frame();
        assert_eq!(
            Request::from_frame(&frame),
            Err(WireError::Malformed("batch key count"))
        );
        // A lying length header with no body behind it fails even earlier,
        // at the sequence-length sanity check.
        let mut e = Enc::new();
        e.seq_len(MAX_BATCH_KEYS + 1);
        let lying = Frame {
            op: op::GETM,
            body: e.into_bytes(),
        };
        assert!(matches!(
            Request::from_frame(&lying),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frame_budget_bounds_cumulative_bodies() {
        // Three frames of 100 bytes each against a 250-byte budget: the
        // third is rejected even though each frame is individually legal.
        let frame = Frame {
            op: op::HIT,
            body: vec![7; 100],
        };
        let mut stream = Vec::new();
        for _ in 0..3 {
            stream.extend_from_slice(&frame.to_bytes());
        }
        let mut budget = FrameBudget::new(250);
        let mut r = stream.as_slice();
        assert!(Frame::read_budgeted(&mut r, &mut budget).is_ok());
        assert!(Frame::read_budgeted(&mut r, &mut budget).is_ok());
        assert_eq!(budget.remaining(), 50);
        assert_eq!(
            Frame::read_budgeted(&mut r, &mut budget),
            Err(WireError::BudgetExceeded {
                asked: 100,
                remaining: 50,
            })
        );
        // Unbudgeted reads of the same stream are unaffected.
        let mut r2 = stream.as_slice();
        for _ in 0..3 {
            assert!(Frame::read_from(&mut r2).is_ok());
        }
    }

    #[test]
    fn oversized_length_header_is_rejected_before_allocating() {
        let mut bytes = Frame {
            op: op::GET,
            body: Vec::new(),
        }
        .to_bytes();
        bytes[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Frame::read_from(&mut bytes.as_slice()),
            Err(WireError::Oversized(u64::MAX))
        );
    }

    #[test]
    fn version_mismatch_and_bad_magic_are_rejected() {
        let good = Frame {
            op: op::MISS,
            body: Vec::new(),
        }
        .to_bytes();
        let mut stale = good.clone();
        stale[4] ^= 0xFF;
        assert!(matches!(
            Frame::read_from(&mut stale.as_slice()),
            Err(WireError::Version(_))
        ));
        let mut magicless = good;
        magicless[0] = b'X';
        assert_eq!(
            Frame::read_from(&mut magicless.as_slice()),
            Err(WireError::BadMagic)
        );
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let bytes = Request::Put {
            ns: "ns".into(),
            key: KeyBuilder::new("wire").u64(2).finish(),
            payload: vec![1; 64],
        }
        .to_frame()
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Frame::read_from(&mut bytes[..cut].as_ref()).is_err(),
                "cut {cut}"
            );
        }
        let mut corrupt = bytes;
        let mid = FRAME_HEADER + 10;
        corrupt[mid] ^= 0x40;
        assert_eq!(
            Frame::read_from(&mut corrupt.as_slice()),
            Err(WireError::Checksum)
        );
    }

    #[test]
    fn clean_eof_reads_as_no_frame() {
        assert_eq!(Frame::read_opt(&mut [].as_ref()).unwrap(), None);
        // One stray byte is a truncated frame, not a clean close.
        assert!(Frame::read_opt(&mut [b'R'].as_ref()).is_err());
    }

    #[test]
    fn tagged_envelopes_round_trip_and_validate() {
        let key = KeyBuilder::new("wire").u64(5).finish();
        let inner = Request::Get2 {
            ns: "featurize".into(),
            key,
            encoding: PAYLOAD_ENCODING_FRAME,
        }
        .to_frame();
        let tagged = tag_request(0xABCD_EF01_2345_6789, &inner);
        assert_eq!(tagged.op, op::TAGGED);
        let (tag, back) = untag(&frame_round_trip(&tagged)).expect("untag");
        assert_eq!(tag, 0xABCD_EF01_2345_6789);
        assert_eq!(back, inner);
        assert_eq!(
            Request::from_frame(&back).unwrap(),
            Request::from_frame(&inner).unwrap()
        );

        // Responses wrap the same way, including empty-body inner frames.
        let resp = Response::Miss.to_frame();
        let wrapped = tag_response(7, &resp);
        assert_eq!(wrapped.op, op::TAGGED_RESP);
        let (tag, back) = untag(&wrapped).expect("untag response");
        assert_eq!((tag, back), (7, resp));

        // Non-envelope and truncated envelopes are typed failures.
        assert!(untag(&inner).is_err());
        assert!(untag(&Frame {
            op: op::TAGGED,
            body: vec![0; 8],
        })
        .is_err());
    }

    #[test]
    fn reassembler_yields_frames_across_arbitrary_chunk_splits() {
        let key = KeyBuilder::new("wire").u64(6).finish();
        let frames = [
            Request::Stat.to_frame(),
            tag_request(
                3,
                &Request::Put {
                    ns: "blast".into(),
                    key,
                    payload: vec![9; 300],
                }
                .to_frame(),
            ),
            Response::Hit(vec![1; 50]).to_frame(),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.to_bytes());
        }
        // Feed one byte at a time: every frame must come out whole, in
        // order, with Ok(None) at every partial point.
        let mut r = FrameReassembler::new();
        let mut got = Vec::new();
        for b in &stream {
            r.ingest(std::slice::from_ref(b));
            while let Some(f) = r.next_frame().expect("clean stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reassembler_rejects_corrupt_streams_early() {
        // A lying length header fails at the header, before any body bytes
        // accumulate.
        let mut bytes = Frame {
            op: op::GET,
            body: Vec::new(),
        }
        .to_bytes();
        bytes[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = FrameReassembler::new();
        r.ingest(&bytes[..FRAME_HEADER]);
        assert_eq!(r.next_frame(), Err(WireError::Oversized(u64::MAX)));

        // Bad magic, stale version, flipped body byte: all typed.
        for (mutate, want_checksum) in [(0usize, false), (4usize, false), (FRAME_HEADER, true)] {
            let mut b = Response::Hit(vec![5; 40]).to_frame().to_bytes();
            b[mutate] ^= 0xFF;
            let mut r = FrameReassembler::new();
            r.ingest(&b);
            let err = r.next_frame().unwrap_err();
            if want_checksum {
                assert_eq!(err, WireError::Checksum);
            }
        }
    }

    #[test]
    fn payload_length_lying_past_body_is_malformed() {
        // Body claims a longer payload than the frame carries.
        let mut e = Enc::new();
        e.usize(1000);
        e.raw(&[1, 2, 3]);
        let frame = Frame {
            op: op::HIT,
            body: e.into_bytes(),
        };
        assert!(matches!(
            Response::from_frame(&frame),
            Err(WireError::Malformed(_))
        ));
    }
}
