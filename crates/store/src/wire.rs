//! Wire protocol of the `rtlt-stored` artifact service.
//!
//! Length-prefixed binary frames over TCP, one request → one response,
//! reusing the [`Enc`]/[`Dec`] codec for frame bodies and stamping every
//! frame with the [`FORMAT_VERSION`] — a client and server of different
//! format generations refuse each other's frames, which the client maps to
//! "miss, recompute" (never an error).
//!
//! ```text
//! frame := magic "RTLW" (4) | version u32 | op u8 | body_len u64
//!          | body [body_len] | checksum u64 (FNV-1a of body)
//! ```
//!
//! Requests: [`Request::Get`], [`Request::Put`], [`Request::Stat`],
//! [`Request::Gc`]. Responses: [`Response::Hit`], [`Response::Miss`],
//! [`Response::Done`], [`Response::Stats`], [`Response::Failed`].
//!
//! Every defense the on-disk entry format has, the wire has too: bad
//! magic, version mismatch, oversized length headers (bounded by
//! [`MAX_FRAME_BODY`] *before* any allocation), truncation, and checksum
//! failures all surface as a typed [`WireError`].

use crate::codec::{Dec, Enc, FORMAT_VERSION};
use crate::entry::fnv1a;
use crate::hash::ContentHash;
use crate::tier::{GcReport, TierKind, TierStats};
use crate::Codec;
use std::io::{Read, Write};

/// Magic bytes opening every wire frame (distinct from the disk entry
/// magic so a file can never be replayed as a frame by accident).
pub const WIRE_MAGIC: [u8; 4] = *b"RTLW";

/// Upper bound on one frame's body, enforced before allocating: a corrupt
/// or hostile length header degrades to a protocol error, not an OOM.
pub const MAX_FRAME_BODY: u64 = 1 << 30;

/// Fixed frame header size: magic + version + op + body length.
pub const FRAME_HEADER: usize = 4 + 4 + 1 + 8;

/// Request opcodes.
pub mod op {
    /// Fetch a payload.
    pub const GET: u8 = 1;
    /// Store a payload.
    pub const PUT: u8 = 2;
    /// Size snapshot of the server's tiers.
    pub const STAT: u8 = 3;
    /// Evict the server's tiers down to a budget.
    pub const GC: u8 = 4;
    /// Response: payload attached.
    pub const HIT: u8 = 0x81;
    /// Response: key not held.
    pub const MISS: u8 = 0x82;
    /// Response: write/gc acknowledged.
    pub const DONE: u8 = 0x83;
    /// Response: tier stats attached.
    pub const STATS: u8 = 0x84;
    /// Response: request failed server-side.
    pub const FAILED: u8 = 0xFF;
}

/// A protocol failure. The [`crate::RemoteTier`] client maps every variant
/// to a cache miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying transport failure (connect/read/write), including
    /// truncated frames.
    Io(std::io::ErrorKind),
    /// The stream did not start with [`WIRE_MAGIC`].
    BadMagic,
    /// Peer speaks a different [`FORMAT_VERSION`].
    Version(u32),
    /// Length header exceeds [`MAX_FRAME_BODY`].
    Oversized(u64),
    /// Body checksum mismatch.
    Checksum,
    /// Body did not decode as the expected request/response shape.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind) => write!(f, "wire i/o error: {kind:?}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::Version(v) => {
                write!(f, "peer format version {v} != ours {FORMAT_VERSION}")
            }
            WireError::Oversized(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_FRAME_BODY} cap"
                )
            }
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.kind())
    }
}

/// One raw frame: opcode plus body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Opcode (see [`op`]).
    pub op: u8,
    /// Body bytes (request/response specific).
    pub body: Vec<u8>,
}

impl Frame {
    /// Serializes the frame (header, body, checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(FRAME_HEADER + self.body.len() + 8);
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(self.op);
        bytes.extend_from_slice(&(self.body.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.body);
        bytes.extend_from_slice(&fnv1a(&self.body).to_le_bytes());
        bytes
    }

    /// Writes the frame to a stream.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), WireError> {
        w.write_all(&self.to_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one frame, validating magic, version, length bound and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; truncation surfaces as
    /// [`WireError::Io`]`(UnexpectedEof)`.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, WireError> {
        let mut header = [0u8; FRAME_HEADER];
        r.read_exact(&mut header)?;
        Self::parse_after_header(&header, r)
    }

    /// Like [`Frame::read_from`], but a connection closed *before any
    /// header byte* reads as `Ok(None)` — the server's idle-connection
    /// exit, distinct from a truncated frame.
    ///
    /// # Errors
    ///
    /// Same as [`Frame::read_from`].
    pub fn read_opt<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
        let mut first = [0u8; 1];
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => return Err(e.into()),
        }
        let mut rest = [0u8; FRAME_HEADER - 1];
        r.read_exact(&mut rest)?;
        let mut header = [0u8; FRAME_HEADER];
        header[0] = first[0];
        header[1..].copy_from_slice(&rest);
        Self::parse_after_header(&header, r).map(Some)
    }

    fn parse_after_header<R: Read>(
        header: &[u8; FRAME_HEADER],
        r: &mut R,
    ) -> Result<Frame, WireError> {
        if header[..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(WireError::Version(version));
        }
        let op = header[8];
        let len = u64::from_le_bytes(header[9..17].try_into().expect("8 bytes"));
        if len > MAX_FRAME_BODY {
            return Err(WireError::Oversized(len));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        let mut trailer = [0u8; 8];
        r.read_exact(&mut trailer)?;
        if fnv1a(&body) != u64::from_le_bytes(trailer) {
            return Err(WireError::Checksum);
        }
        Ok(Frame { op, body })
    }
}

fn enc_payload(e: &mut Enc, payload: &[u8]) {
    e.usize(payload.len());
    e.raw(payload);
}

fn dec_payload(d: &mut Dec<'_>) -> Result<Vec<u8>, WireError> {
    let n = d.usize().map_err(|_| WireError::Malformed("payload len"))?;
    if n > d.remaining() {
        return Err(WireError::Malformed("payload len"));
    }
    Ok(d.raw(n)
        .map_err(|_| WireError::Malformed("payload"))?
        .to_vec())
}

/// A client→server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch the payload under `(ns, key)`.
    Get {
        /// Stage namespace.
        ns: String,
        /// Content key.
        key: ContentHash,
    },
    /// Store `payload` under `(ns, key)`.
    Put {
        /// Stage namespace.
        ns: String,
        /// Content key.
        key: ContentHash,
        /// Artifact payload bytes.
        payload: Vec<u8>,
    },
    /// Size snapshot of the server's tiers.
    Stat,
    /// Evict the server's tiers down to `budget_bytes`.
    Gc {
        /// Target size in bytes.
        budget_bytes: u64,
    },
}

impl Request {
    /// Serializes into a frame.
    pub fn to_frame(&self) -> Frame {
        let mut e = Enc::new();
        let op = match self {
            Request::Get { ns, key } => {
                e.str(ns);
                key.encode(&mut e);
                op::GET
            }
            Request::Put { ns, key, payload } => {
                e.str(ns);
                key.encode(&mut e);
                enc_payload(&mut e, payload);
                op::PUT
            }
            Request::Stat => op::STAT,
            Request::Gc { budget_bytes } => {
                e.u64(*budget_bytes);
                op::GC
            }
        };
        Frame {
            op,
            body: e.into_bytes(),
        }
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown opcodes or bodies that do not
    /// decode as the opcode's shape.
    pub fn from_frame(frame: &Frame) -> Result<Request, WireError> {
        let mut d = Dec::new(&frame.body);
        let req = match frame.op {
            op::GET => Request::Get {
                ns: d.str().map_err(|_| WireError::Malformed("get ns"))?,
                key: ContentHash::decode(&mut d).map_err(|_| WireError::Malformed("get key"))?,
            },
            op::PUT => Request::Put {
                ns: d.str().map_err(|_| WireError::Malformed("put ns"))?,
                key: ContentHash::decode(&mut d).map_err(|_| WireError::Malformed("put key"))?,
                payload: dec_payload(&mut d)?,
            },
            op::STAT => Request::Stat,
            op::GC => Request::Gc {
                budget_bytes: d.u64().map_err(|_| WireError::Malformed("gc budget"))?,
            },
            _ => return Err(WireError::Malformed("request opcode")),
        };
        if !d.is_finished() {
            return Err(WireError::Malformed("trailing request bytes"));
        }
        Ok(req)
    }
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The key was held; payload attached.
    Hit(Vec<u8>),
    /// The key was not held.
    Miss,
    /// Write/gc acknowledged; gc responses carry the eviction report.
    Done(GcReport),
    /// Tier size snapshot.
    Stats(Vec<TierStats>),
    /// The request failed server-side (the client treats this as a miss).
    Failed(String),
}

fn enc_tier_kind(e: &mut Enc, kind: TierKind) {
    e.u8(match kind {
        TierKind::Memory => 0,
        TierKind::Disk => 1,
        TierKind::Remote => 2,
    });
}

fn dec_tier_kind(d: &mut Dec<'_>) -> Result<TierKind, WireError> {
    match d.u8().map_err(|_| WireError::Malformed("tier kind"))? {
        0 => Ok(TierKind::Memory),
        1 => Ok(TierKind::Disk),
        2 => Ok(TierKind::Remote),
        _ => Err(WireError::Malformed("tier kind tag")),
    }
}

impl Response {
    /// Serializes into a frame.
    pub fn to_frame(&self) -> Frame {
        let mut e = Enc::new();
        let op = match self {
            Response::Hit(payload) => {
                enc_payload(&mut e, payload);
                op::HIT
            }
            Response::Miss => op::MISS,
            Response::Done(r) => {
                e.u64(r.scanned_files);
                e.u64(r.scanned_bytes);
                e.u64(r.evicted_files);
                e.u64(r.evicted_bytes);
                e.u64(r.remaining_bytes);
                op::DONE
            }
            Response::Stats(tiers) => {
                e.seq_len(tiers.len());
                for t in tiers {
                    enc_tier_kind(&mut e, t.kind);
                    e.str(&t.detail);
                    e.u64(t.entries);
                    e.u64(t.bytes);
                    e.bool(t.reachable);
                }
                op::STATS
            }
            Response::Failed(msg) => {
                e.str(msg);
                op::FAILED
            }
        };
        Frame {
            op,
            body: e.into_bytes(),
        }
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown opcodes or mis-shaped bodies.
    pub fn from_frame(frame: &Frame) -> Result<Response, WireError> {
        let mut d = Dec::new(&frame.body);
        let resp = match frame.op {
            op::HIT => Response::Hit(dec_payload(&mut d)?),
            op::MISS => Response::Miss,
            op::DONE => {
                let mut next = || d.u64().map_err(|_| WireError::Malformed("gc report"));
                Response::Done(GcReport {
                    scanned_files: next()?,
                    scanned_bytes: next()?,
                    evicted_files: next()?,
                    evicted_bytes: next()?,
                    remaining_bytes: next()?,
                })
            }
            op::STATS => {
                let n = d
                    .seq_len(2)
                    .map_err(|_| WireError::Malformed("stats len"))?;
                let mut tiers = Vec::with_capacity(n);
                for _ in 0..n {
                    let kind = dec_tier_kind(&mut d)?;
                    let detail = d.str().map_err(|_| WireError::Malformed("tier detail"))?;
                    let entries = d.u64().map_err(|_| WireError::Malformed("tier entries"))?;
                    let bytes = d.u64().map_err(|_| WireError::Malformed("tier bytes"))?;
                    let reachable = d.bool().map_err(|_| WireError::Malformed("tier flag"))?;
                    tiers.push(TierStats {
                        kind,
                        detail,
                        entries,
                        bytes,
                        reachable,
                    });
                }
                Response::Stats(tiers)
            }
            op::FAILED => {
                Response::Failed(d.str().map_err(|_| WireError::Malformed("error message"))?)
            }
            _ => return Err(WireError::Malformed("response opcode")),
        };
        if !d.is_finished() {
            return Err(WireError::Malformed("trailing response bytes"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;

    fn frame_round_trip(frame: &Frame) -> Frame {
        let bytes = frame.to_bytes();
        Frame::read_from(&mut bytes.as_slice()).expect("round trip")
    }

    #[test]
    fn request_frames_round_trip() {
        let key = KeyBuilder::new("wire").u64(1).finish();
        for req in [
            Request::Get {
                ns: "featurize".into(),
                key,
            },
            Request::Put {
                ns: "blast".into(),
                key,
                payload: vec![0, 1, 2, 255],
            },
            Request::Put {
                ns: "empty".into(),
                key,
                payload: Vec::new(),
            },
            Request::Stat,
            Request::Gc { budget_bytes: 42 },
        ] {
            let frame = req.to_frame();
            let back = Request::from_frame(&frame_round_trip(&frame)).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_frames_round_trip() {
        for resp in [
            Response::Hit(vec![9; 100]),
            Response::Miss,
            Response::Done(GcReport {
                scanned_files: 1,
                scanned_bytes: 2,
                evicted_files: 3,
                evicted_bytes: 4,
                remaining_bytes: 5,
            }),
            Response::Stats(vec![TierStats {
                kind: TierKind::Disk,
                detail: "/tmp/x".into(),
                entries: 7,
                bytes: 8,
                reachable: true,
            }]),
            Response::Failed("nope".into()),
        ] {
            let frame = resp.to_frame();
            let back = Response::from_frame(&frame_round_trip(&frame)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn oversized_length_header_is_rejected_before_allocating() {
        let mut bytes = Frame {
            op: op::GET,
            body: Vec::new(),
        }
        .to_bytes();
        bytes[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Frame::read_from(&mut bytes.as_slice()),
            Err(WireError::Oversized(u64::MAX))
        );
    }

    #[test]
    fn version_mismatch_and_bad_magic_are_rejected() {
        let good = Frame {
            op: op::MISS,
            body: Vec::new(),
        }
        .to_bytes();
        let mut stale = good.clone();
        stale[4] ^= 0xFF;
        assert!(matches!(
            Frame::read_from(&mut stale.as_slice()),
            Err(WireError::Version(_))
        ));
        let mut magicless = good;
        magicless[0] = b'X';
        assert_eq!(
            Frame::read_from(&mut magicless.as_slice()),
            Err(WireError::BadMagic)
        );
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let bytes = Request::Put {
            ns: "ns".into(),
            key: KeyBuilder::new("wire").u64(2).finish(),
            payload: vec![1; 64],
        }
        .to_frame()
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Frame::read_from(&mut bytes[..cut].as_ref()).is_err(),
                "cut {cut}"
            );
        }
        let mut corrupt = bytes;
        let mid = FRAME_HEADER + 10;
        corrupt[mid] ^= 0x40;
        assert_eq!(
            Frame::read_from(&mut corrupt.as_slice()),
            Err(WireError::Checksum)
        );
    }

    #[test]
    fn clean_eof_reads_as_no_frame() {
        assert_eq!(Frame::read_opt(&mut [].as_ref()).unwrap(), None);
        // One stray byte is a truncated frame, not a clean close.
        assert!(Frame::read_opt(&mut [b'R'].as_ref()).is_err());
    }

    #[test]
    fn payload_length_lying_past_body_is_malformed() {
        // Body claims a longer payload than the frame carries.
        let mut e = Enc::new();
        e.usize(1000);
        e.raw(&[1, 2, 3]);
        let frame = Frame {
            op: op::HIT,
            body: e.into_bytes(),
        };
        assert!(matches!(
            Response::from_frame(&frame),
            Err(WireError::Malformed(_))
        ));
    }
}
