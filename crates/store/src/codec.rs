//! Hand-rolled compact binary codec.
//!
//! The build environment is offline (no serde), so every artifact that can
//! live in the on-disk store tier implements [`Codec`] against the little
//! [`Enc`]/[`Dec`] writer/reader pair here. The format is deliberately
//! boring: fixed-width little-endian integers, `f64` as raw IEEE-754 bits
//! (bit-exact round-trips, `NaN` included), `u32` length prefixes for
//! strings and sequences, `u8` tags for enums. [`FORMAT_VERSION`] is stamped
//! into every on-disk entry header; bump it whenever any `Codec` impl in the
//! workspace changes shape so stale cache entries read as misses instead of
//! garbage.

use std::sync::Arc;

/// On-disk format version. Part of every disk-entry header: entries written
/// under a different version are treated as cache misses.
///
/// v2: `Netlist` gained module-instance scope tables (provenance for the
/// module-granular cache keys).
///
/// v3: tier payloads are [`crate::compress`] frames (mode-tagged, possibly
/// compressed) rather than bare codec bytes. v2 entries are still read
/// transparently: their payloads are lifted into raw frames on the way out
/// of the disk tier, so a v3 process warms from a v2 cache without
/// recomputing.
pub const FORMAT_VERSION: u32 = 3;

/// Decode failure — a truncated, corrupted, or differently-versioned byte
/// stream. The store maps every decode failure to "recompute the artifact".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What the decoder was reading when it failed.
    pub context: &'static str,
}

impl CodecError {
    /// Creates an error tagged with the decoding context.
    pub fn new(context: &'static str) -> CodecError {
        CodecError { context }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error while decoding {}", self.context)
    }
}

impl std::error::Error for CodecError {}

/// Byte-stream encoder (append-only writer over a `Vec<u8>`).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Finishes encoding, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its raw IEEE-754 bits (bit-exact, `NaN` safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes without a length prefix (caller knows the length).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a sequence length prefix.
    pub fn seq_len(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Byte-stream decoder (cursor over a byte slice).
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf`, starting at the first byte.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input has been consumed (decoders must end here —
    /// trailing bytes mean a corrupt or mismatched entry).
    pub fn is_finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(context));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `usize` written as `u64`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::new("usize overflow"))
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::new("bool")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let b = self.take(n, "str bytes")?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::new("str utf-8"))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n, "raw bytes")
    }

    /// Reads a sequence length prefix, rejecting lengths that cannot fit in
    /// the remaining input (`min_elem_bytes` is the smallest possible
    /// encoding of one element — guards against bogus giant allocations
    /// from corrupt prefixes).
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::new("sequence length"));
        }
        Ok(n)
    }
}

/// Binary round-trip: `decode(encode(x)) == x`.
///
/// Implementations must consume exactly what they wrote, so containers of
/// `Codec` values concatenate without framing.
pub trait Codec: Sized {
    /// Appends this value's encoding to `e`.
    fn encode(&self, e: &mut Enc);

    /// Decodes one value from `d`.
    ///
    /// # Errors
    ///
    /// Any truncation, tag mismatch, or malformed payload.
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError>;

    /// Encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.into_bytes()
    }

    /// Decodes from a byte slice, requiring the whole slice be consumed.
    ///
    /// # Errors
    ///
    /// Decode failures, or trailing bytes after the value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(bytes);
        let v = Self::decode(&mut d)?;
        if !d.is_finished() {
            return Err(CodecError::new("trailing bytes"));
        }
        Ok(v)
    }
}

impl Codec for u8 {
    fn encode(&self, e: &mut Enc) {
        e.u8(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, e: &mut Enc) {
        e.u32(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, e: &mut Enc) {
        e.u64(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.u64()
    }
}

impl Codec for usize {
    fn encode(&self, e: &mut Enc) {
        e.usize(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.usize()
    }
}

impl Codec for f64 {
    fn encode(&self, e: &mut Enc) {
        e.f64(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.f64()
    }
}

impl Codec for bool {
    fn encode(&self, e: &mut Enc) {
        e.bool(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.bool()
    }
}

impl Codec for String {
    fn encode(&self, e: &mut Enc) {
        e.str(self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.str()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, e: &mut Enc) {
        e.seq_len(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let n = d.seq_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, e: &mut Enc) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            _ => Err(CodecError::new("Option tag")),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, e: &mut Enc) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl<T: Codec> Codec for Arc<[T]> {
    fn encode(&self, e: &mut Enc) {
        e.seq_len(self.len());
        for v in self.iter() {
            v.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Vec::<T>::decode(d)?.into())
    }
}

impl Codec for Arc<str> {
    fn encode(&self, e: &mut Enc) {
        e.str(self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(d.str()?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).expect("round trip"), v);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-0.0f64);
        round_trip(f64::INFINITY);
        round_trip(true);
        round_trip(String::from("héllo ∞"));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u64>::None);
        round_trip(Some(7u64));
        round_trip((String::from("a"), 4u32));
    }

    #[test]
    fn nan_round_trips_bit_exact() {
        let bytes = f64::NAN.to_bytes();
        let back = f64::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = vec![9u64, 10, 11].to_bytes();
        for cut in 0..bytes.len() {
            assert!(Vec::<u64>::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bogus_sequence_length_rejected_without_alloc() {
        // A corrupt length prefix claiming 4 billion elements must fail
        // fast, not try to allocate.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        assert!(Vec::<u64>::from_bytes(&e.into_bytes()).is_err());
    }

    #[test]
    fn arc_variants_round_trip() {
        let s: Arc<str> = "shared".into();
        assert_eq!(Arc::<str>::from_bytes(&s.to_bytes()).unwrap(), s);
        let v: Arc<[f64]> = vec![1.0, f64::NEG_INFINITY].into();
        let back = Arc::<[f64]>::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(&back[..], &v[..]);
    }
}
