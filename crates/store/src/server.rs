//! The `rtlt-stored` artifact service: a shared warm cache for fleets.
//!
//! The server is nothing but a [`StoreTier`] stack behind the [`wire`]
//! protocol — a byte-LRU [`MemTier`] fronting a checksummed [`DiskTier`],
//! the exact impls the local `Store` composes. GETs walk the stack (disk
//! hits promote into memory), PUTs land in every tier, STAT snapshots tier
//! sizes, GC evicts down to a budget. One thread per connection; each
//! connection handles any number of request/response round trips.
//!
//! Payload *content* is never inspected: the server moves opaque bytes
//! whose integrity the entry checksums and content keys already pin down,
//! so it needs no knowledge of the pipeline's artifact types — old and new
//! clients can only disagree at the [`crate::FORMAT_VERSION`] stamp, which
//! both the frame header and the client's typed decode guard.

use crate::tier::{DiskTier, MemTier, StoreTier, TierLookup};
use crate::wire::{Frame, Request, Response, WireError};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Default in-memory tier budget: 512 MiB of payload bytes.
pub const DEFAULT_SERVER_MEM_BUDGET: usize = 512 << 20;

/// Configuration of one [`ArtifactServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root of the server's disk tier.
    pub dir: PathBuf,
    /// Byte budget of the in-memory tier (0 disables it).
    pub mem_budget: usize,
}

/// The shared artifact service: a tier stack plus the request handler.
///
/// Transport-independent — [`ArtifactServer::handle`] maps one request to
/// one response, so tests can drive it without sockets and
/// [`serve`] wires it to a [`TcpListener`].
#[derive(Debug)]
pub struct ArtifactServer {
    tiers: Vec<Arc<dyn StoreTier>>,
}

impl ArtifactServer {
    /// Builds the mem-over-disk tier stack from `cfg`.
    pub fn new(cfg: &ServerConfig) -> ArtifactServer {
        let mut tiers: Vec<Arc<dyn StoreTier>> = Vec::new();
        if cfg.mem_budget > 0 {
            tiers.push(Arc::new(MemTier::new(cfg.mem_budget)));
        }
        tiers.push(Arc::new(DiskTier::new(cfg.dir.clone())));
        ArtifactServer { tiers }
    }

    /// Server over an explicit tier stack (fallback order).
    pub fn with_tiers(tiers: Vec<Arc<dyn StoreTier>>) -> ArtifactServer {
        ArtifactServer { tiers }
    }

    /// Answers one request.
    pub fn handle(&self, req: Request) -> Response {
        match req {
            Request::Get { ns, key } => {
                for (i, tier) in self.tiers.iter().enumerate() {
                    if let TierLookup::Hit(payload) = tier.get_bytes(&ns, key) {
                        // Promote into earlier (faster) tiers, as the
                        // local store does.
                        for earlier in &self.tiers[..i] {
                            earlier.put_bytes(&ns, key, &payload);
                        }
                        return Response::Hit(payload);
                    }
                    // Corrupt entries were already dropped by the tier;
                    // fall through like a miss.
                }
                Response::Miss
            }
            Request::Put { ns, key, payload } => {
                for tier in &self.tiers {
                    tier.put_bytes(&ns, key, &payload);
                }
                Response::Done(Default::default())
            }
            Request::Stat => Response::Stats(self.tiers.iter().map(|t| t.stats()).collect()),
            Request::Gc { budget_bytes } => {
                let mut report = crate::GcReport::default();
                for tier in &self.tiers {
                    report.absorb(tier.gc(budget_bytes));
                }
                Response::Done(report)
            }
        }
    }

    /// Serves one connection until the peer closes it, goes idle past
    /// [`IDLE_TIMEOUT`], or commits a protocol error (after which the
    /// connection is dropped — the *client* treats that as misses; the
    /// server just moves to the next connection).
    ///
    /// # Errors
    ///
    /// The first [`WireError`] on the connection, for logging. Idle
    /// timeouts and clean closes are `Ok`.
    pub fn serve_connection(&self, stream: &mut TcpStream) -> Result<(), WireError> {
        loop {
            let frame = match Frame::read_opt(stream) {
                Ok(None) => return Ok(()), // clean close
                // SO_RCVTIMEO expiry between frames: the client vanished
                // or went idle — reap the connection (and its thread)
                // instead of blocking on it forever. A surviving client
                // transparently reconnects on its next request.
                Err(WireError::Io(
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut,
                )) => return Ok(()),
                Ok(Some(frame)) => frame,
                Err(e) => return Err(e),
            };
            let response = match Request::from_frame(&frame) {
                Ok(req) => self.handle(req),
                Err(e) => Response::Failed(e.to_string()),
            };
            response.to_frame().write_to(stream)?;
        }
    }
}

/// Per-connection idle timeout: a client that disappears without closing
/// (sleep, network drop) releases its server thread and socket after this
/// long instead of leaking them for the service's lifetime.
pub const IDLE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Accept loop: serves `listener` forever, one thread per connection.
pub fn serve(listener: TcpListener, server: Arc<ArtifactServer>) -> ! {
    loop {
        match listener.accept() {
            Ok((mut stream, peer)) => {
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IDLE_TIMEOUT));
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    if let Err(e) = server.serve_connection(&mut stream) {
                        eprintln!("[rtlt-stored] connection {peer}: {e}");
                    }
                });
            }
            Err(e) => eprintln!("[rtlt-stored] accept failed: {e}"),
        }
    }
}

/// Binds `addr` and serves an [`ArtifactServer`] on a background thread —
/// the in-process form the integration tests (and the bin) use. Returns
/// the bound address (useful with port 0).
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, cfg: &ServerConfig) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let server = Arc::new(ArtifactServer::new(cfg));
    std::thread::spawn(move || serve(listener, server));
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;
    use crate::ContentHash;

    fn key(n: u64) -> ContentHash {
        KeyBuilder::new("server-test").u64(n).finish()
    }

    #[test]
    fn handle_round_trips_get_put_stat_gc() {
        let server = ArtifactServer::with_tiers(vec![Arc::new(MemTier::new(1 << 20))]);
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(1)
            }),
            Response::Miss
        );
        let put = Request::Put {
            ns: "ns".into(),
            key: key(1),
            payload: vec![1, 2, 3],
        };
        assert!(matches!(server.handle(put), Response::Done(_)));
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(1)
            }),
            Response::Hit(vec![1, 2, 3])
        );
        match server.handle(Request::Stat) {
            Response::Stats(tiers) => {
                assert_eq!(tiers.len(), 1);
                assert_eq!(tiers[0].entries, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match server.handle(Request::Gc { budget_bytes: 0 }) {
            Response::Done(r) => assert_eq!(r.evicted_files, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(1)
            }),
            Response::Miss
        );
    }

    #[test]
    fn disk_hits_promote_into_the_mem_tier() {
        let scratch = std::env::temp_dir().join(format!("rtlt-stored-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let mem = Arc::new(MemTier::new(1 << 20));
        let disk = Arc::new(DiskTier::new(&scratch));
        disk.put_bytes("ns", key(2), &[7; 10]);
        let server = ArtifactServer::with_tiers(vec![mem.clone(), disk]);
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(2)
            }),
            Response::Hit(vec![7; 10])
        );
        assert_eq!(mem.stats().entries, 1, "promoted");
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
