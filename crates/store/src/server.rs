//! The `rtlt-stored` artifact service: a shared warm cache for fleets.
//!
//! The server is nothing but a [`StoreTier`] stack behind the [`wire`]
//! protocol — a byte-LRU [`MemTier`] fronting a checksummed [`DiskTier`],
//! the exact impls the local `Store` composes. GETs walk the stack (disk
//! hits promote into memory), PUTs land in every tier, STAT snapshots tier
//! sizes, GC evicts down to a budget.
//!
//! Transport is a std-only, hand-rolled **nonblocking event loop**
//! ([`serve`]): one thread owns the listener and every connection, all in
//! nonblocking mode, and each scheduler tick accepts pending peers, then
//! drives every connection's write buffer, read buffer and incremental
//! [`FrameReassembler`] until the socket reports `WouldBlock`. A
//! connection whose response backlog exceeds [`MAX_CONN_INFLIGHT`] stops
//! being read until the peer drains it (backpressure), and a connection
//! silent past [`IDLE_TIMEOUT`] is reaped. Because requests are consumed
//! as fast as they arrive — not one lockstep exchange at a time — a
//! generation-3 client can keep a window of [`op::TAGGED`] envelopes in
//! flight on one connection; responses carry the request's tag, batch
//! streams included. Untagged (v1/v2) peers see exactly the old
//! serialized request→response behavior, byte-identically.
//!
//! Payload *content* is never inspected: the server moves opaque bytes
//! whose integrity the entry checksums and content keys already pin down,
//! so it needs no knowledge of the pipeline's artifact types. Since format
//! v3 the tiers hold [`crate::compress`] frames; the v2 data ops
//! (`GET2`/`PUT2`/`GETM2`) move those frames verbatim, while the v1 ops
//! translate at the boundary — legacy PUTs are lifted into raw frames and
//! legacy GETs are decompressed on the way out — so mixed-version fleets
//! share one cache byte-identically. Unknown payload encodings degrade to
//! miss (GET) or a discarded write (PUT), never to garbage.
//!
//! Beyond bytes, the server holds the fleet's [`Planner`]: LEASE/REPORT/
//! PLAN requests let workers draw design names from one shared
//! work-stealing queue (see [`crate::plan`]), and GETM answers a whole
//! key batch as a stream of bounded [`Response::BatchPart`] chunks.

use crate::compress;
use crate::plan::{LeaseGrant, Planner};
use crate::tier::{DiskTier, MemTier, StoreTier, TierLookup};
use crate::wire::{
    op, tag_response, untag, Frame, FrameReassembler, Request, Response, ServerLoad,
    MAX_BATCH_CHUNK, MAX_BATCH_KEYS, MAX_CONN_INFLIGHT, PAYLOAD_ENCODING_FRAME, WIRE_VERSION,
};
use crate::ContentHash;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Default in-memory tier budget: 512 MiB of payload bytes.
pub const DEFAULT_SERVER_MEM_BUDGET: usize = 512 << 20;

/// Configuration of one [`ArtifactServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root of the server's disk tier.
    pub dir: PathBuf,
    /// Byte budget of the in-memory tier (0 disables it).
    pub mem_budget: usize,
    /// Deadline after which a silent worker's design lease is re-queued
    /// (work stealing).
    pub lease_timeout: Duration,
}

/// The shared artifact service: a tier stack, the fleet planner, and the
/// request handler.
///
/// Transport-independent — [`ArtifactServer::handle`] maps one
/// single-response request to its response and
/// [`ArtifactServer::handle_batch`] maps a GETM to its chunk stream, so
/// tests can drive both without sockets and [`serve`] wires them to a
/// [`TcpListener`].
#[derive(Debug)]
pub struct ArtifactServer {
    tiers: Vec<Arc<dyn StoreTier>>,
    planner: Planner,
    metrics: ServerMetrics,
}

/// Live gauges of the event loop, surfaced through [`Request::Stat2`]:
/// open connections and exchanges accepted but not yet fully flushed back
/// to their peers. Zero outside [`serve`] (e.g. when tests drive
/// [`ArtifactServer::handle`] directly).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    connections: AtomicU64,
    inflight: AtomicU64,
}

impl ServerMetrics {
    /// Connections currently open on the event loop.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Exchanges accepted but not yet fully flushed.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }
}

impl ArtifactServer {
    /// Builds the mem-over-disk tier stack from `cfg`.
    pub fn new(cfg: &ServerConfig) -> ArtifactServer {
        let mut tiers: Vec<Arc<dyn StoreTier>> = Vec::new();
        if cfg.mem_budget > 0 {
            tiers.push(Arc::new(MemTier::new(cfg.mem_budget)));
        }
        tiers.push(Arc::new(DiskTier::new(cfg.dir.clone())));
        ArtifactServer {
            tiers,
            planner: Planner::new(cfg.lease_timeout),
            metrics: ServerMetrics::default(),
        }
    }

    /// Server over an explicit tier stack (fallback order) with the
    /// default lease timeout.
    pub fn with_tiers(tiers: Vec<Arc<dyn StoreTier>>) -> ArtifactServer {
        ArtifactServer {
            tiers,
            planner: Planner::default(),
            metrics: ServerMetrics::default(),
        }
    }

    /// The fleet work queue.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The event loop's live gauges.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// One tier-stack lookup with promotion into earlier (faster) tiers,
    /// as the local store does. Corrupt entries were already dropped by
    /// the tier; they fall through like a miss.
    fn lookup(&self, ns: &str, key: ContentHash) -> Option<Vec<u8>> {
        for (i, tier) in self.tiers.iter().enumerate() {
            if let TierLookup::Hit(payload) = tier.get_bytes(ns, key) {
                for earlier in &self.tiers[..i] {
                    earlier.put_bytes(ns, key, &payload);
                }
                return Some(payload);
            }
        }
        None
    }

    /// Answers one single-response request ([`Request::GetBatch`] streams
    /// instead — see [`ArtifactServer::handle_batch`]).
    pub fn handle(&self, req: Request) -> Response {
        match req {
            // v1 GET: the tier holds a frame; the legacy client expects
            // bare payload bytes, so decompress at the boundary. A frame
            // that will not decompress reads as a miss.
            Request::Get { ns, key } => match self
                .lookup(&ns, key)
                .and_then(|frame| compress::decompress(&frame))
            {
                Some(payload) => Response::Hit(payload),
                None => Response::Miss,
            },
            Request::Get2 { ns, key, encoding } => {
                if encoding != PAYLOAD_ENCODING_FRAME {
                    // Unknown encoding: degrade to a miss — the client
                    // recomputes, byte-identically.
                    return Response::Miss;
                }
                match self.lookup(&ns, key) {
                    Some(frame) => Response::Hit(frame),
                    None => Response::Miss,
                }
            }
            Request::GetBatch { .. } | Request::GetBatch2 { .. } => {
                Response::Failed("GETM is a streaming request; use handle_batch".to_owned())
            }
            Request::Lease { worker } => match self.planner.lease(&worker) {
                LeaseGrant::Granted { design } => Response::Leased { design },
                LeaseGrant::Drained { outstanding } => Response::Drained { outstanding },
            },
            Request::Report {
                worker,
                design,
                seconds,
                ok,
            } => {
                self.planner.complete(&worker, &design, seconds, ok);
                Response::Done(Default::default())
            }
            Request::Plan { epoch, designs } => {
                self.planner.plan(epoch, &designs);
                Response::Done(Default::default())
            }
            Request::PlanStat => Response::PlanStats(self.planner.stats()),
            // v1 PUT carries bare payload bytes; lift them into the frame
            // space the tiers hold.
            Request::Put { ns, key, payload } => {
                let frame = compress::raw_frame(&payload);
                for tier in &self.tiers {
                    tier.put_bytes(&ns, key, &frame);
                }
                Response::Done(Default::default())
            }
            Request::Put2 {
                ns,
                key,
                encoding,
                payload,
            } => {
                // An unknown encoding is acknowledged without storing — a
                // lost write, never a corrupt entry.
                if encoding == PAYLOAD_ENCODING_FRAME {
                    for tier in &self.tiers {
                        tier.put_bytes(&ns, key, &payload);
                    }
                }
                Response::Done(Default::default())
            }
            Request::Stat => Response::Stats(self.tiers.iter().map(|t| t.stats()).collect()),
            Request::Stat2 => Response::ServerStats(ServerLoad {
                tiers: self.tiers.iter().map(|t| t.stats()).collect(),
                connections: self.metrics.connections(),
                inflight: self.metrics.inflight(),
                wire_version: WIRE_VERSION,
            }),
            Request::Gc { budget_bytes } => {
                let mut report = crate::GcReport::default();
                for tier in &self.tiers {
                    report.absorb(tier.gc(budget_bytes));
                }
                Response::Done(report)
            }
            // Session verbs belong to the live annotation service. The
            // artifact store refuses them on a live connection — the same
            // `Failed` a pre-session server would produce for the unknown
            // opcode — and the session client degrades to local
            // annotation, byte-identically.
            Request::Open { .. }
            | Request::Edit { .. }
            | Request::Annotate { .. }
            | Request::Close { .. } => {
                Response::Failed("session verbs are served by rtlt-annotated".to_owned())
            }
        }
    }

    /// Answers a [`Request::GetBatch`] as a stream of
    /// [`Response::BatchPart`] chunks, handing each chunk to `emit` as
    /// soon as it is full — the server never materializes more than one
    /// chunk (plus the payload being looked up), so a near-budget batch
    /// costs ~[`MAX_BATCH_CHUNK`] of server memory, not the whole answer.
    ///
    /// Two byte bounds apply: each part flushes around `chunk_bytes`, and
    /// the *cumulative* frame-body bytes of the whole answer are capped at
    /// [`MAX_CONN_INFLIGHT`] — hits past the cap degrade to misses (the
    /// client recomputes them), so a batch of maximum-size payloads can
    /// never balloon either side of the connection.
    ///
    /// With `frames` the hit payloads are emitted as the compress frames
    /// the tiers hold (GETM2); without it each frame is decompressed at
    /// the boundary for a legacy GETM client (an undecompressible frame
    /// reads as a miss). The budget charges whatever actually travels.
    ///
    /// # Errors
    ///
    /// Propagates the first `emit` failure (a dead peer stops the stream).
    pub fn stream_batch<E>(
        &self,
        items: &[(String, ContentHash)],
        chunk_bytes: u64,
        frames: bool,
        mut emit: impl FnMut(Response) -> Result<(), E>,
    ) -> Result<(), E> {
        if items.len() > MAX_BATCH_KEYS {
            return emit(Response::Failed(format!(
                "batch of {} keys exceeds the {MAX_BATCH_KEYS} cap",
                items.len()
            )));
        }
        // The client reads the response stream under a cumulative
        // MAX_CONN_INFLIGHT budget charged on full frame-body bytes, so
        // the server must budget the same way: every item is charged a
        // conservative framing overhead (index, flags, length prefixes,
        // amortized part headers — actually ~20 bytes) on top of its
        // payload, guaranteeing a stream the server emits always fits the
        // client's budget.
        const ITEM_OVERHEAD: u64 = 64;
        let mut cur: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
        let mut cur_bytes = 0u64;
        let mut budget = MAX_CONN_INFLIGHT;
        for (i, (ns, key)) in items.iter().enumerate() {
            // Miss markers occupy body bytes too; with at most
            // MAX_BATCH_KEYS items this charge alone can never exhaust
            // the budget.
            budget = budget.saturating_sub(ITEM_OVERHEAD);
            let hit = match self.lookup(ns, *key) {
                Some(frame) if frames => Some(frame),
                Some(frame) => compress::decompress(&frame),
                None => None,
            };
            let payload = match hit {
                Some(p) if (p.len() as u64) <= budget => {
                    budget -= p.len() as u64;
                    Some(p)
                }
                // Over-budget hits degrade to misses: the client
                // recomputes them, byte-identically.
                _ => None,
            };
            let len = payload.as_ref().map_or(0, |p| p.len() as u64);
            if cur_bytes + len > chunk_bytes && !cur.is_empty() {
                emit(Response::BatchPart {
                    items: std::mem::take(&mut cur),
                    last: false,
                })?;
                cur_bytes = 0;
            }
            cur_bytes += len;
            cur.push((i as u64, payload));
        }
        emit(Response::BatchPart {
            items: cur,
            last: true,
        })
    }

    /// Collecting form of [`ArtifactServer::stream_batch`] with the
    /// production [`MAX_BATCH_CHUNK`] threshold and legacy (decompressed)
    /// payloads — for tests and transports that want the parts as a `Vec`.
    pub fn handle_batch(&self, items: &[(String, ContentHash)]) -> Vec<Response> {
        self.handle_batch_chunked(items, MAX_BATCH_CHUNK)
    }

    /// [`ArtifactServer::handle_batch`] with an explicit chunk threshold.
    pub fn handle_batch_chunked(
        &self,
        items: &[(String, ContentHash)],
        chunk_bytes: u64,
    ) -> Vec<Response> {
        let mut parts = Vec::new();
        let _ = self.stream_batch(items, chunk_bytes, false, |part| {
            parts.push(part);
            Ok::<(), std::convert::Infallible>(())
        });
        parts
    }
}

/// Per-connection idle timeout: a client that disappears without closing
/// (sleep, network drop) releases its connection state and socket after
/// this long instead of leaking them for the service's lifetime.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// How long the event loop sleeps when a full tick made no progress —
/// nothing accepted, read, written or parsed. Short enough that a lone
/// serialized client pays sub-millisecond turnaround; long enough that an
/// idle server burns no meaningful CPU.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// Read scratch size per tick; bigger reads just take more ticks.
const READ_CHUNK: usize = 64 << 10;

/// One nonblocking connection on the event loop: an incremental frame
/// reassembler on the read side, a flush-as-writable byte queue on the
/// write side, and the bookkeeping that maps queued response bytes back
/// to in-flight exchange counts.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    rx: FrameReassembler,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Total bytes flushed to the socket over the connection's lifetime.
    flushed: u64,
    /// Per accepted exchange: the absolute `flushed` offset at which its
    /// response bytes end. Popped (and the in-flight gauge decremented)
    /// as the write side advances past it.
    pending: VecDeque<u64>,
    last_activity: Instant,
    /// The peer half-closed its read side; finish flushing, then drop.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer: SocketAddr) -> Conn {
        Conn {
            stream,
            peer,
            rx: FrameReassembler::new(),
            wbuf: Vec::new(),
            wpos: 0,
            flushed: 0,
            pending: VecDeque::new(),
            last_activity: Instant::now(),
            read_closed: false,
        }
    }

    /// Response bytes queued but not yet flushed.
    fn backlog(&self) -> u64 {
        (self.wbuf.len() - self.wpos) as u64
    }

    /// Queues one response frame, wrapping it in a tagged envelope when
    /// the request arrived in one.
    fn queue(&mut self, tag: Option<u64>, frame: &Frame) {
        let bytes = match tag {
            Some(t) => tag_response(t, frame).to_bytes(),
            None => frame.to_bytes(),
        };
        self.wbuf.extend_from_slice(&bytes);
    }

    /// Parses and answers one request frame (tagged or bare), queuing the
    /// response bytes. Never fails: malformed-but-framed requests are
    /// answered as [`Response::Failed`] on the still-alive connection,
    /// exactly as the blocking loop did.
    fn respond(&mut self, server: &ArtifactServer, frame: Frame) {
        server.metrics.inflight.fetch_add(1, Ordering::Relaxed);
        let (tag, inner) = if frame.op == op::TAGGED {
            match untag(&frame) {
                Ok((t, f)) => (Some(t), f),
                Err(e) => {
                    // The envelope itself is malformed: no tag to echo, so
                    // answer bare — the peer's demux treats an untagged
                    // Failed as a protocol-level refusal.
                    self.queue(None, &Response::Failed(e.to_string()).to_frame());
                    self.settle();
                    return;
                }
            }
        } else {
            (None, frame)
        };
        match Request::from_frame(&inner) {
            // Batch answers stream in bounded chunks; under a tagged
            // envelope every chunk carries the request's tag, so the
            // stream can interleave with other in-flight exchanges.
            Ok(Request::GetBatch { items }) => {
                let _ = server.stream_batch(&items, MAX_BATCH_CHUNK, false, |part| {
                    self.queue(tag, &part.to_frame());
                    Ok::<(), std::convert::Infallible>(())
                });
            }
            Ok(Request::GetBatch2 { items, encoding }) => {
                if encoding == PAYLOAD_ENCODING_FRAME {
                    let _ = server.stream_batch(&items, MAX_BATCH_CHUNK, true, |part| {
                        self.queue(tag, &part.to_frame());
                        Ok::<(), std::convert::Infallible>(())
                    });
                } else {
                    // Unknown encoding: a well-formed all-miss stream —
                    // the client recomputes everything.
                    self.queue(
                        tag,
                        &Response::BatchPart {
                            items: Vec::new(),
                            last: true,
                        }
                        .to_frame(),
                    );
                }
            }
            Ok(req) => {
                let resp = server.handle(req).to_frame();
                self.queue(tag, &resp);
            }
            Err(e) => self.queue(tag, &Response::Failed(e.to_string()).to_frame()),
        }
        self.settle();
    }

    /// Records where the just-queued exchange's response bytes end.
    fn settle(&mut self) {
        self.pending.push_back(self.flushed + self.backlog());
    }

    /// Flushes queued bytes until the socket would block. Returns
    /// `(alive, progressed)`.
    fn flush(&mut self, server: &ArtifactServer) -> (bool, bool) {
        let mut progressed = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return (false, progressed),
                Ok(n) => {
                    self.wpos += n;
                    self.flushed += n as u64;
                    progressed = true;
                    self.last_activity = Instant::now();
                    while self.pending.front().is_some_and(|end| *end <= self.flushed) {
                        self.pending.pop_front();
                        server.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return (false, progressed),
            }
        }
        if self.wpos == self.wbuf.len() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }
        (true, progressed)
    }

    /// One scheduler tick: flush, read, parse, dispatch. Returns
    /// `(alive, progressed)`.
    fn tick(&mut self, server: &ArtifactServer, scratch: &mut [u8]) -> (bool, bool) {
        let (alive, mut progressed) = self.flush(server);
        if !alive {
            return (false, progressed);
        }
        if self.read_closed {
            // Half-closed peer: once the response backlog drains, the
            // conversation is over.
            return (self.backlog() > 0, progressed);
        }
        // Backpressure: a peer that stops reading while pumping requests
        // cannot balloon the response backlog past the same cumulative
        // bound the wire's FrameBudget enforces per exchange — the loop
        // simply stops reading it until the backlog drains.
        if self.backlog() <= MAX_CONN_INFLIGHT {
            loop {
                match self.stream.read(scratch) {
                    Ok(0) => {
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        self.rx.ingest(&scratch[..n]);
                        self.last_activity = Instant::now();
                        progressed = true;
                        if self.backlog() + self.rx.buffered() as u64 > MAX_CONN_INFLIGHT {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return (false, progressed),
                }
            }
        }
        loop {
            match self.rx.next_frame() {
                Ok(Some(frame)) => {
                    progressed = true;
                    self.respond(server, frame);
                }
                Ok(None) => break,
                Err(e) => {
                    // The stream can no longer be framed: drop the
                    // connection, as the blocking loop did. The client
                    // treats it as misses.
                    eprintln!("[rtlt-stored] connection {}: {e}", self.peer);
                    return (false, progressed);
                }
            }
        }
        if self.read_closed && self.backlog() == 0 {
            return (false, progressed);
        }
        if self.last_activity.elapsed() > IDLE_TIMEOUT {
            return (false, progressed);
        }
        (true, progressed)
    }
}

/// The event loop: serves `listener` forever on the calling thread —
/// nonblocking accept plus per-connection readiness polling driven by
/// `WouldBlock`. See the module docs for the architecture.
///
/// # Panics
///
/// If the listener cannot be switched to nonblocking mode (a broken
/// socket at startup — nothing can be served).
pub fn serve(listener: TcpListener, server: Arc<ArtifactServer>) -> ! {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    loop {
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    // Nagle would add a delay to every small planner RPC
                    // (LEASE/REPORT) and every tagged ack; the protocol
                    // writes whole frames, so there is nothing to coalesce.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    server.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    conns.push(Conn::new(stream, peer));
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    eprintln!("[rtlt-stored] accept failed: {e}");
                    break;
                }
            }
        }
        conns.retain_mut(|conn| {
            let (alive, p) = conn.tick(&server, &mut scratch);
            progressed |= p;
            if !alive {
                server.metrics.connections.fetch_sub(1, Ordering::Relaxed);
                server
                    .metrics
                    .inflight
                    .fetch_sub(conn.pending.len() as u64, Ordering::Relaxed);
            }
            alive
        });
        if !progressed {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// Binds `addr` and serves an [`ArtifactServer`] on a background thread —
/// the in-process form the integration tests (and the bin) use. Returns
/// the bound address (useful with port 0).
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, cfg: &ServerConfig) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let server = Arc::new(ArtifactServer::new(cfg));
    std::thread::spawn(move || serve(listener, server));
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;
    use crate::ContentHash;

    fn key(n: u64) -> ContentHash {
        KeyBuilder::new("server-test").u64(n).finish()
    }

    #[test]
    fn handle_round_trips_get_put_stat_gc() {
        let server = ArtifactServer::with_tiers(vec![Arc::new(MemTier::new(1 << 20))]);
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(1)
            }),
            Response::Miss
        );
        let put = Request::Put {
            ns: "ns".into(),
            key: key(1),
            payload: vec![1, 2, 3],
        };
        assert!(matches!(server.handle(put), Response::Done(_)));
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(1)
            }),
            Response::Hit(vec![1, 2, 3])
        );
        match server.handle(Request::Stat) {
            Response::Stats(tiers) => {
                assert_eq!(tiers.len(), 1);
                assert_eq!(tiers[0].entries, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match server.handle(Request::Gc { budget_bytes: 0 }) {
            Response::Done(r) => assert_eq!(r.evicted_files, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(1)
            }),
            Response::Miss
        );
    }

    #[test]
    fn batched_get_streams_in_bounded_chunks() {
        let server = ArtifactServer::with_tiers(vec![Arc::new(MemTier::new(1 << 20))]);
        for i in 0..4u64 {
            server.handle(Request::Put {
                ns: "ns".into(),
                key: key(i),
                payload: vec![i as u8; 100],
            });
        }
        let items: Vec<(String, ContentHash)> = (0..6u64).map(|i| ("ns".into(), key(i))).collect();
        // Chunk threshold of 150 bytes: 100-byte payloads flush after
        // every hit-pair boundary, so the stream has several parts.
        let parts = server.handle_batch_chunked(&items, 150);
        assert!(parts.len() > 1, "chunked into {} part(s)", parts.len());
        let mut got: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            match part {
                Response::BatchPart { items, last } => {
                    assert_eq!(*last, i == parts.len() - 1, "only the final part is last");
                    got.extend(items.iter().cloned());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        got.sort_by_key(|(i, _)| *i);
        assert_eq!(got.len(), 6);
        for (i, payload) in &got {
            if *i < 4 {
                assert_eq!(payload.as_deref(), Some(&vec![*i as u8; 100][..]));
            } else {
                assert!(payload.is_none(), "missing keys report as misses");
            }
        }
        // An over-long batch is refused outright.
        let huge: Vec<(String, ContentHash)> = (0..=MAX_BATCH_KEYS as u64)
            .map(|i| ("ns".into(), key(i)))
            .collect();
        assert!(matches!(
            server.handle_batch(&huge).as_slice(),
            [Response::Failed(_)]
        ));
        // And GETM through the single-response path is a typed failure.
        assert!(matches!(
            server.handle(Request::GetBatch { items }),
            Response::Failed(_)
        ));
    }

    #[test]
    fn planner_verbs_round_trip_through_handle() {
        let server = ArtifactServer::with_tiers(vec![Arc::new(MemTier::new(1 << 20))]);
        assert!(matches!(
            server.handle(Request::Plan {
                epoch: 1,
                designs: vec![("small".into(), 1.0), ("big".into(), 7.0)],
            }),
            Response::Done(_)
        ));
        assert_eq!(
            server.handle(Request::Lease {
                worker: "w1".into()
            }),
            Response::Leased {
                design: "big".into()
            }
        );
        assert!(matches!(
            server.handle(Request::Report {
                worker: "w1".into(),
                design: "big".into(),
                seconds: 2.0,
                ok: true,
            }),
            Response::Done(_)
        ));
        assert_eq!(
            server.handle(Request::Lease {
                worker: "w2".into()
            }),
            Response::Leased {
                design: "small".into()
            }
        );
        match server.handle(Request::PlanStat) {
            Response::PlanStats(s) => {
                assert_eq!((s.planned, s.completed, s.active_leases), (2, 1, 1));
                assert_eq!(s.workers, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v1_and_v2_ops_share_one_cache() {
        let server = ArtifactServer::with_tiers(vec![Arc::new(MemTier::new(1 << 20))]);
        // A v2 PUT stores the frame; a legacy GET sees the decoded bytes.
        let payload: Vec<u8> = (0..200u16).map(|i| (i / 8) as u8).collect();
        server.handle(Request::Put2 {
            ns: "ns".into(),
            key: key(1),
            encoding: PAYLOAD_ENCODING_FRAME,
            payload: compress::compress(&payload),
        });
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(1)
            }),
            Response::Hit(payload.clone())
        );
        // A legacy PUT is lifted into a raw frame; a v2 GET sees a frame
        // that decodes to the same bytes.
        server.handle(Request::Put {
            ns: "ns".into(),
            key: key(2),
            payload: payload.clone(),
        });
        match server.handle(Request::Get2 {
            ns: "ns".into(),
            key: key(2),
            encoding: PAYLOAD_ENCODING_FRAME,
        }) {
            Response::Hit(frame) => {
                assert_eq!(compress::decompress(&frame).as_deref(), Some(&payload[..]));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown encodings degrade: GET2 to a miss, PUT2 to a lost write.
        assert_eq!(
            server.handle(Request::Get2 {
                ns: "ns".into(),
                key: key(1),
                encoding: 42,
            }),
            Response::Miss
        );
        assert!(matches!(
            server.handle(Request::Put2 {
                ns: "ns".into(),
                key: key(3),
                encoding: 42,
                payload: compress::raw_frame(&payload),
            }),
            Response::Done(_)
        ));
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(3)
            }),
            Response::Miss,
            "unknown-encoding writes are discarded, not stored as garbage"
        );
    }

    #[test]
    fn disk_hits_promote_into_the_mem_tier() {
        let scratch = std::env::temp_dir().join(format!("rtlt-stored-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let mem = Arc::new(MemTier::new(1 << 20));
        let disk = Arc::new(DiskTier::new(&scratch));
        disk.put_bytes("ns", key(2), &compress::raw_frame(&[7; 10]));
        let server = ArtifactServer::with_tiers(vec![mem.clone(), disk]);
        assert_eq!(
            server.handle(Request::Get {
                ns: "ns".into(),
                key: key(2)
            }),
            Response::Hit(vec![7; 10])
        );
        assert_eq!(mem.stats().entries, 1, "promoted");
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
