//! Property tests of the wire frame codec: arbitrary frames round-trip
//! bit-exactly, and the mutations a hostile or flaky network can produce —
//! truncation, payload corruption, version skew, lying length headers —
//! are always rejected (which the client maps to "miss, recompute").

use proptest::prelude::*;
use rtlt_store::wire::{
    AnnotationReply, EditSplice, Frame, FrameBudget, Request, Response, WireError, FRAME_HEADER,
    MAX_EDIT_SPLICES,
};
use rtlt_store::{ContentHash, KeyBuilder};

fn key_of(tag: u64) -> ContentHash {
    KeyBuilder::new("wire-prop").u64(tag).finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame round-trips through serialize → read, bit-exactly.
    #[test]
    fn frames_round_trip(
        op in 0u8..=255,
        body in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let frame = Frame { op, body: body.clone() };
        let bytes = frame.to_bytes();
        let back = Frame::read_from(&mut bytes.as_slice()).expect("round trip");
        prop_assert_eq!(back.op, op);
        prop_assert_eq!(back.body, body);
    }

    /// GET/PUT requests round-trip through the typed layer.
    #[test]
    fn requests_round_trip(
        tag in 0u64..1000,
        ns in "compile|blast|label|featurize|shard|model",
        payload in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let get = Request::Get { ns: ns.clone(), key: key_of(tag) };
        let back = Request::from_frame(&get.to_frame()).expect("get");
        prop_assert_eq!(&back, &get);
        let put = Request::Put { ns, key: key_of(tag), payload };
        let frame_bytes = put.to_frame().to_bytes();
        let frame = Frame::read_from(&mut frame_bytes.as_slice()).expect("frame");
        let back = Request::from_frame(&frame).expect("put");
        prop_assert_eq!(back, put);
    }

    /// Hit/miss responses round-trip, and every strict prefix of the frame
    /// fails to read rather than yielding a wrong response.
    #[test]
    fn responses_survive_no_truncation(
        payload in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let resp = Response::Hit(payload);
        let bytes = resp.to_frame().to_bytes();
        let back = Response::from_frame(
            &Frame::read_from(&mut bytes.as_slice()).expect("full frame"),
        ).expect("decode");
        prop_assert_eq!(&back, &resp);
        let step = (bytes.len() / 16).max(1);
        let mut cut = 0;
        while cut < bytes.len() {
            prop_assert!(Frame::read_from(&mut bytes[..cut].as_ref()).is_err());
            cut += step;
        }
    }

    /// Flipping any single byte of a frame is detected: the read either
    /// fails outright or (for flips inside the opcode byte) changes `op`
    /// without corrupting the body.
    #[test]
    fn single_byte_corruption_never_passes_silently(
        body in proptest::collection::vec(0u8..=255, 1..128),
        pos_seed in 0usize..100000,
        flip in 1u8..=255,
    ) {
        let frame = Frame { op: 1, body: body.clone() };
        let mut bytes = frame.to_bytes();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        match Frame::read_from(&mut bytes.as_slice()) {
            // The opcode byte is the one header byte the checksum does not
            // cover; a flip there yields a well-formed frame with a
            // different op, which the typed request/response layer rejects.
            Ok(read) => {
                prop_assert_eq!(pos, 8);
                prop_assert_eq!(read.body, body);
                prop_assert!(read.op != 1);
            }
            Err(
                WireError::BadMagic
                | WireError::Version(_)
                | WireError::Oversized(_)
                | WireError::Checksum
                | WireError::Io(_),
            ) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
        }
    }

    /// Batched request/response frames round-trip, misses and hits alike.
    #[test]
    fn batch_frames_round_trip(
        tags in proptest::collection::vec(0u64..1000, 0..32),
        payload in proptest::collection::vec(0u8..=255, 0..128),
        last_seed in 0u8..2,
    ) {
        let last = last_seed == 1;
        let req = Request::GetBatch {
            items: tags.iter().map(|t| ("featurize".to_owned(), key_of(*t))).collect(),
        };
        let bytes = req.to_frame().to_bytes();
        let back = Request::from_frame(
            &Frame::read_from(&mut bytes.as_slice()).expect("frame"),
        ).expect("decode");
        prop_assert_eq!(&back, &req);

        let resp = Response::BatchPart {
            items: tags
                .iter()
                .enumerate()
                .map(|(i, t)| (i as u64, (t % 2 == 0).then(|| payload.clone())))
                .collect(),
            last,
        };
        let bytes = resp.to_frame().to_bytes();
        let back = Response::from_frame(
            &Frame::read_from(&mut bytes.as_slice()).expect("frame"),
        ).expect("decode");
        prop_assert_eq!(back, resp);
    }

    /// The cumulative in-flight budget rejects a frame sequence at exactly
    /// the first frame whose body would push the running total past the
    /// budget — each frame individually legal, the sum bounded. This is
    /// the satellite defense for GETM: per-frame caps alone would let a
    /// batch of max-size frames balloon one connection.
    #[test]
    fn cumulative_budget_rejects_at_the_first_overflowing_frame(
        sizes in proptest::collection::vec(0usize..600, 1..12),
        budget_total in 0u64..3000,
    ) {
        let mut stream = Vec::new();
        for (i, n) in sizes.iter().enumerate() {
            stream.extend_from_slice(
                &Frame { op: 0x81, body: vec![i as u8; *n] }.to_bytes(),
            );
        }
        let mut budget = FrameBudget::new(budget_total);
        let mut r = stream.as_slice();
        let mut spent = 0u64;
        for (i, n) in sizes.iter().enumerate() {
            let n = *n as u64;
            match Frame::read_budgeted(&mut r, &mut budget) {
                Ok(frame) => {
                    spent += n;
                    prop_assert!(spent <= budget_total, "frame {i} overspent");
                    prop_assert_eq!(frame.body.len() as u64, n);
                    prop_assert_eq!(budget.remaining(), budget_total - spent);
                }
                Err(WireError::BudgetExceeded { asked, remaining }) => {
                    prop_assert_eq!(asked, n);
                    prop_assert_eq!(remaining, budget_total - spent);
                    prop_assert!(spent + n > budget_total, "rejected a frame that fit");
                    return Ok(());
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
            }
        }
        // Every frame fit: the whole stream must have been within budget.
        prop_assert!(spent <= budget_total);
    }

    /// Session requests (OPEN/EDIT/ANNOTATE/CLOSE) round-trip with
    /// arbitrary designs, sources, and splice lists — including splices
    /// whose inserts carry NUL bytes, multi-byte UTF-8, and newlines.
    #[test]
    fn session_requests_round_trip(
        design in "alpha|beta|soc_top|lane_a0",
        source in proptest::collection::vec(0u8..=255, 0..200)
            .prop_map(|v| String::from_utf8_lossy(&v).into_owned()),
        session in 0u64..u64::MAX,
        check in 0u64..u64::MAX,
        raw_splices in proptest::collection::vec(
            (
                0u64..u64::MAX,
                0u64..u64::MAX,
                proptest::collection::vec(0u8..=255, 0..40)
                    .prop_map(|v| String::from_utf8_lossy(&v).into_owned()),
            ),
            0..16,
        ),
    ) {
        let splices: Vec<EditSplice> = raw_splices
            .into_iter()
            .map(|(at, delete, insert)| EditSplice { at, delete, insert })
            .collect();
        for req in [
            Request::Open { design, source },
            Request::Edit { session, splices, check },
            Request::Annotate { session },
            Request::Close { session },
        ] {
            let bytes = req.to_frame().to_bytes();
            let back = Request::from_frame(
                &Frame::read_from(&mut bytes.as_slice()).expect("frame"),
            ).expect("decode");
            prop_assert_eq!(back, req);
        }
    }

    /// Session responses round-trip, and every strict prefix of an
    /// ANNOTATION body is refused rather than decoded to a short reply.
    #[test]
    fn session_responses_round_trip_and_reject_truncation(
        session in 0u64..u64::MAX,
        revision in 0u64..u64::MAX,
        annotated in proptest::collection::vec(0u8..=255, 0..200)
            .prop_map(|v| String::from_utf8_lossy(&v).into_owned()),
        modules in proptest::collection::vec("alu|fetch|decode|lane_a|mul0", 0..8),
        counters in proptest::collection::vec(0u64..u64::MAX, 4..5),
    ) {
        let opened = Response::Session { session, revision, check: counters[0] };
        let bytes = opened.to_frame().to_bytes();
        let back = Response::from_frame(
            &Frame::read_from(&mut bytes.as_slice()).expect("frame"),
        ).expect("decode");
        prop_assert_eq!(&back, &opened);

        let reply = Response::Annotation(AnnotationReply {
            annotated,
            dirty_modules: modules,
            dirty_cone_bound: counters[0],
            dirty_shards: counters[1],
            reused_shards: counters[2],
            total_shards: counters[3],
        });
        let frame = reply.to_frame();
        let back = Response::from_frame(&frame).expect("decode");
        prop_assert_eq!(&back, &reply);
        let step = (frame.body.len() / 16).max(1);
        let mut cut = 0;
        while cut < frame.body.len() {
            let trunc = Frame { op: frame.op, body: frame.body[..cut].to_vec() };
            prop_assert!(
                Response::from_frame(&trunc).is_err(),
                "prefix of {} bytes decoded", cut
            );
            cut += step;
        }
    }

    /// A lying splice count — larger than the bytes behind it or past the
    /// protocol cap — is refused before any allocation, and flipping any
    /// single body byte of an EDIT frame never passes the frame layer
    /// silently (the checksum covers the whole body).
    #[test]
    fn edit_frames_reject_count_lies_and_corruption(
        session in 0u64..u64::MAX,
        inserts in proptest::collection::vec("x \\^ 1|y << 2| |wire w;", 1..8),
        lie in 0u64..4,
        pos_seed in 0usize..100000,
        flip in 1u8..=255,
    ) {
        let splices: Vec<EditSplice> = inserts
            .into_iter()
            .enumerate()
            .map(|(i, insert)| EditSplice { at: i as u64 * 10, delete: 2, insert })
            .collect();
        let req = Request::Edit { session, splices, check: 7 };
        let frame = req.to_frame();

        // Overwrite the splice-count word (a u32 right after the session
        // and check words) with a count the body cannot back.
        let mut lied = frame.clone();
        let bogus: u32 = match lie {
            0 => MAX_EDIT_SPLICES as u32 + 1,
            1 => u32::MAX,
            2 => u32::MAX / 2,
            _ => MAX_EDIT_SPLICES as u32 + 1_000_000,
        };
        lied.body[16..20].copy_from_slice(&bogus.to_le_bytes());
        prop_assert!(Request::from_frame(&lied).is_err());

        let mut bytes = frame.to_bytes();
        let pos = FRAME_HEADER + pos_seed % frame.body.len();
        bytes[pos] ^= flip;
        prop_assert!(matches!(
            Frame::read_from(&mut bytes.as_slice()),
            Err(WireError::Checksum)
        ));
    }

    /// Length headers beyond the cap are rejected before any allocation.
    #[test]
    fn oversized_length_headers_rejected(extra in 1u64..u64::MAX / 2) {
        let mut bytes = Frame { op: 2, body: vec![1, 2, 3] }.to_bytes();
        let lying = rtlt_store::wire::MAX_FRAME_BODY + extra % (u64::MAX / 2);
        bytes[9..17].copy_from_slice(&lying.to_le_bytes());
        prop_assert_eq!(
            Frame::read_from(&mut bytes.as_slice()),
            Err(WireError::Oversized(lying))
        );
    }
}

#[test]
fn header_layout_is_stable() {
    // The wire header layout is a cross-version contract: magic(4) +
    // version(4) + op(1) + len(8).
    assert_eq!(FRAME_HEADER, 17);
    let bytes = Frame {
        op: 7,
        body: vec![1],
    }
    .to_bytes();
    assert_eq!(&bytes[..4], b"RTLW");
    assert_eq!(bytes[8], 7);
    assert_eq!(bytes.len(), FRAME_HEADER + 1 + 8);
}
