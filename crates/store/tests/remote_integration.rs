//! End-to-end tests of the `rtlt-stored` service: a real TCP server on an
//! ephemeral localhost port, real [`RemoteTier`] clients, and the
//! degradation contract — a dead, vanished, or garbage-speaking server
//! must reproduce cold-run behavior exactly, never an error.

use rtlt_store::plan::LeaseGrant;
use rtlt_store::server::{spawn, ServerConfig};
use rtlt_store::{
    ContentHash, KeyBuilder, MemTier, RemoteTier, Store, StoreTier, TierKind, TierLookup,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rtlt-remote-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key(label: &str) -> ContentHash {
    KeyBuilder::new("remote-integration").str(label).finish()
}

/// Starts an in-process server over a scratch dir, returns its address.
fn start_server(scratch: &ScratchDir) -> String {
    let cfg = ServerConfig {
        dir: scratch.0.clone(),
        mem_budget: 1 << 20,
        lease_timeout: rtlt_store::plan::DEFAULT_LEASE_TIMEOUT,
    };
    let addr = spawn("127.0.0.1:0", &cfg).expect("bind ephemeral port");
    addr.to_string()
}

/// An address in the dynamic port range nothing is listening on: bind an
/// ephemeral port, then drop the listener.
fn dead_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

#[test]
fn two_stores_share_one_warm_cache_through_the_server() {
    let server_dir = ScratchDir::new("server");
    let addr = start_server(&server_dir);

    // Machine A: local disk + remote. Its put lands on the server too
    // (write-back).
    let dir_a = ScratchDir::new("machine-a");
    let mut store_a = Store::on_disk(&dir_a.0);
    store_a.push_tier(Arc::new(RemoteTier::new(&addr)));
    store_a.put("featurize", key("shared"), vec![1.5f64, -0.0, 1e300]);

    // Machine B: empty local cache, same server. The lookup is served by
    // the remote tier and counted as such.
    let dir_b = ScratchDir::new("machine-b");
    let mut store_b = Store::on_disk(&dir_b.0);
    store_b.push_tier(Arc::new(RemoteTier::new(&addr)));
    let got = store_b
        .get::<Vec<f64>>("featurize", key("shared"))
        .expect("served by the remote tier");
    assert_eq!(got[0], 1.5);
    assert_eq!(got[1].to_bits(), (-0.0f64).to_bits());
    let s = store_b.stats().namespace("featurize");
    assert_eq!((s.remote_hits, s.disk_hits, s.misses), (1, 0, 0));

    // Read-through population: the remote hit warmed B's *local* disk
    // tier, so a fresh store over B's dir (no remote) hits locally.
    let store_b2 = Store::on_disk(&dir_b.0);
    assert!(store_b2
        .get::<Vec<f64>>("featurize", key("shared"))
        .is_some());
    assert_eq!(store_b2.stats().namespace("featurize").disk_hits, 1);
}

#[test]
fn batched_get_pipelines_a_key_set_in_one_exchange() {
    let server_dir = ScratchDir::new("batch");
    let addr = start_server(&server_dir);
    let remote = RemoteTier::new(&addr);
    // Payloads above the chunk threshold would be unwieldy here; what the
    // TCP test pins down is the multi-frame framing itself (the server
    // always terminates with a last-flagged part) and index alignment.
    // Tier payloads are compress frames over codec encodings, so store
    // them as such — the typed Store::get below must be able to decode
    // what it stages.
    use rtlt_store::Codec;
    let framed: Vec<Vec<u8>> = (0..5u8)
        .map(|i| rtlt_store::compress::raw_frame(&vec![i; 64].to_bytes()))
        .collect();
    for (i, bytes) in framed.iter().enumerate() {
        remote.put_bytes("featurize", key(&format!("k{i}")), bytes);
    }
    let items: Vec<(String, ContentHash)> = (0..7u64)
        .map(|i| ("featurize".to_owned(), key(&format!("k{i}"))))
        .collect();
    let results = remote.get_bytes_batch(&items);
    assert_eq!(results.len(), 7);
    for (i, r) in results.iter().enumerate() {
        if i < 5 {
            assert_eq!(r, &TierLookup::Hit(framed[i].clone()), "index {i}");
        } else {
            assert_eq!(r, &TierLookup::Miss, "index {i}");
        }
    }
    // An empty batch never touches the wire.
    assert!(remote.get_bytes_batch(&[]).is_empty());

    // Store-level: prefetch stages the batch; the following gets are
    // remote (batched) hits that also warm the local disk tier.
    let local = ScratchDir::new("batch-local");
    let mut store = Store::on_disk(&local.0);
    store.push_tier(Arc::new(RemoteTier::new(&addr)));
    let flags = store.prefetch(&items[..6]);
    assert_eq!(flags, vec![true, true, true, true, true, false]);
    for i in 0..5u64 {
        let got = store
            .get::<Vec<u8>>("featurize", key(&format!("k{i}")))
            .expect("staged payload");
        assert_eq!(*got, vec![i as u8; 64]);
    }
    let s = store.stats().namespace("featurize");
    assert_eq!((s.remote_hits, s.batched_hits), (5, 5));
    // Read-through: the staged hits populated the local disk.
    let store2 = Store::on_disk(&local.0);
    assert!(store2.get::<Vec<u8>>("featurize", key("k0")).is_some());
    assert_eq!(store2.stats().namespace("featurize").disk_hits, 1);
}

#[test]
fn batched_get_against_a_dead_server_degrades_to_all_misses() {
    let addr = dead_addr();
    let remote = RemoteTier::with_timeout(&addr, Duration::from_millis(300));
    let items: Vec<(String, ContentHash)> = (0..3u64)
        .map(|i| ("ns".to_owned(), key(&format!("d{i}"))))
        .collect();
    assert_eq!(
        remote.get_bytes_batch(&items),
        vec![TierLookup::Miss, TierLookup::Miss, TierLookup::Miss]
    );
}

#[test]
fn lease_plan_report_verbs_work_over_tcp() {
    let server_dir = ScratchDir::new("planner");
    let addr = start_server(&server_dir);
    let fleet = RemoteTier::new(&addr);
    assert!(fleet.plan_remote(7, &[("alpha".to_owned(), 2.0), ("beta".to_owned(), 5.0)]));
    assert_eq!(
        fleet.lease_remote("w1"),
        Some(LeaseGrant::Granted {
            design: "beta".to_owned()
        })
    );
    assert!(fleet.report_remote("w1", "beta", 4.5, true));
    assert_eq!(
        fleet.lease_remote("w2"),
        Some(LeaseGrant::Granted {
            design: "alpha".to_owned()
        })
    );
    // w1 polls while w2 holds the lease: drained but outstanding.
    assert_eq!(
        fleet.lease_remote("w1"),
        Some(LeaseGrant::Drained { outstanding: 1 })
    );
    assert!(fleet.report_remote("w2", "alpha", 1.0, true));
    assert_eq!(
        fleet.lease_remote("w1"),
        Some(LeaseGrant::Drained { outstanding: 0 })
    );
    let stats = fleet.plan_stats_remote().expect("reachable");
    assert_eq!((stats.planned, stats.completed, stats.workers), (2, 2, 2));

    // Planner verbs against a dead server answer None/false — the caller
    // degrades to the static path.
    let dead = RemoteTier::with_timeout(dead_addr(), Duration::from_millis(300));
    assert!(!dead.plan_remote(7, &[("x".to_owned(), 1.0)]));
    assert_eq!(dead.lease_remote("w"), None);
    assert!(!dead.report_remote("w", "x", 1.0, true));
    assert_eq!(dead.plan_stats_remote(), None);
}

#[test]
fn remote_stat_and_gc_round_trip() {
    let server_dir = ScratchDir::new("statgc");
    let addr = start_server(&server_dir);
    let remote = RemoteTier::new(&addr);
    remote.put_bytes("ns", key("a"), &[9; 50]);
    remote.put_bytes("ns", key("b"), &[8; 50]);
    assert!(matches!(
        remote.get_bytes("ns", key("a")),
        TierLookup::Hit(_)
    ));

    let stats = remote.stats();
    assert_eq!(stats.kind, TierKind::Remote);
    assert!(stats.reachable);
    // mem tier + disk tier both hold the two entries.
    let tiers = remote.stat_remote().expect("reachable");
    assert_eq!(tiers.len(), 2);
    assert!(tiers.iter().all(|t| t.entries == 2));

    // Remote gc empties the server; local Store::gc must NOT have that
    // side effect (it skips remote tiers).
    let mut local = Store::in_memory();
    local.push_tier(Arc::new(RemoteTier::new(&addr)));
    let local_report = local.gc(0);
    assert_eq!(local_report.evicted_files, 0);
    assert!(matches!(
        remote.get_bytes("ns", key("a")),
        TierLookup::Hit(_)
    ));

    let report = remote.gc_remote(0).expect("reachable");
    assert!(report.evicted_files >= 2, "both tiers evicted");
    assert_eq!(remote.get_bytes("ns", key("a")), TierLookup::Miss);
}

#[test]
fn unreachable_server_degrades_to_cold_behavior() {
    let addr = dead_addr();
    let remote = Arc::new(RemoteTier::with_timeout(&addr, Duration::from_millis(300)));
    let mut store = Store::in_memory();
    store.push_tier(remote.clone());

    // Every operation behaves exactly like a cold store: computes, keeps
    // the decoded artifact locally, never errors.
    let mut calls = 0;
    let v = store.get_or_compute("ns", key("x"), || {
        calls += 1;
        42u64
    });
    assert_eq!((*v, calls), (42, 1));
    // Second lookup: decoded front cache, remote never consulted again
    // for this key.
    let v2 = store.get::<u64>("ns", key("x")).expect("front cache");
    assert!(Arc::ptr_eq(&v, &v2));

    // The tier trips open after a bounded number of failures and stays
    // a cheap no-op afterwards.
    for i in 0..10 {
        assert_eq!(
            remote.get_bytes("ns", key(&format!("probe{i}"))),
            TierLookup::Miss
        );
    }
    assert!(remote.is_down());
    assert!(!remote.stats().reachable);
    assert_eq!(remote.stat_remote(), None);
    assert_eq!(remote.gc_remote(0), None);
}

#[test]
fn garbage_speaking_server_degrades_to_misses() {
    // A "server" that answers every connection with bytes that are not a
    // wire frame: the client must read that as a protocol failure and
    // degrade to misses.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        use std::io::{Read, Write};
        for stream in listener.incoming().flatten() {
            let mut stream = stream;
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\n\r\nnot a frame");
        }
    });
    let remote = RemoteTier::with_timeout(&addr, Duration::from_millis(500));
    assert_eq!(remote.get_bytes("ns", key("y")), TierLookup::Miss);
    // And through a Store: the computation still runs and succeeds.
    let mut store = Store::in_memory();
    store.push_tier(Arc::new(RemoteTier::with_timeout(
        &addr,
        Duration::from_millis(500),
    )));
    let v = store.get_or_compute("ns", key("y"), || 7u64);
    assert_eq!(*v, 7);
}

#[test]
fn server_mem_tier_serves_without_touching_disk_layout() {
    // A memory-only "server stack" (what --mem-budget serves when the
    // disk is cold): parity between the byte MemTier and the remote path.
    let server_dir = ScratchDir::new("memparity");
    let addr = start_server(&server_dir);
    let remote = RemoteTier::new(&addr);
    let local = MemTier::new(1 << 20);
    let payload = vec![3u8; 128];
    remote.put_bytes("ns", key("p"), &payload);
    local.put_bytes("ns", key("p"), &payload);
    assert_eq!(
        remote.get_bytes("ns", key("p")),
        local.get_bytes("ns", key("p")),
        "remote and local tiers agree byte-for-byte"
    );
}
