//! End-to-end tests of the `rtlt-stored` service: a real TCP server on an
//! ephemeral localhost port, real [`RemoteTier`] clients, and the
//! degradation contract — a dead, vanished, or garbage-speaking server
//! must reproduce cold-run behavior exactly, never an error.

use rtlt_store::server::{spawn, ServerConfig};
use rtlt_store::{
    ContentHash, KeyBuilder, MemTier, RemoteTier, Store, StoreTier, TierKind, TierLookup,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rtlt-remote-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key(label: &str) -> ContentHash {
    KeyBuilder::new("remote-integration").str(label).finish()
}

/// Starts an in-process server over a scratch dir, returns its address.
fn start_server(scratch: &ScratchDir) -> String {
    let cfg = ServerConfig {
        dir: scratch.0.clone(),
        mem_budget: 1 << 20,
    };
    let addr = spawn("127.0.0.1:0", &cfg).expect("bind ephemeral port");
    addr.to_string()
}

/// An address in the dynamic port range nothing is listening on: bind an
/// ephemeral port, then drop the listener.
fn dead_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

#[test]
fn two_stores_share_one_warm_cache_through_the_server() {
    let server_dir = ScratchDir::new("server");
    let addr = start_server(&server_dir);

    // Machine A: local disk + remote. Its put lands on the server too
    // (write-back).
    let dir_a = ScratchDir::new("machine-a");
    let mut store_a = Store::on_disk(&dir_a.0);
    store_a.push_tier(Arc::new(RemoteTier::new(&addr)));
    store_a.put("featurize", key("shared"), vec![1.5f64, -0.0, 1e300]);

    // Machine B: empty local cache, same server. The lookup is served by
    // the remote tier and counted as such.
    let dir_b = ScratchDir::new("machine-b");
    let mut store_b = Store::on_disk(&dir_b.0);
    store_b.push_tier(Arc::new(RemoteTier::new(&addr)));
    let got = store_b
        .get::<Vec<f64>>("featurize", key("shared"))
        .expect("served by the remote tier");
    assert_eq!(got[0], 1.5);
    assert_eq!(got[1].to_bits(), (-0.0f64).to_bits());
    let s = store_b.stats().namespace("featurize");
    assert_eq!((s.remote_hits, s.disk_hits, s.misses), (1, 0, 0));

    // Read-through population: the remote hit warmed B's *local* disk
    // tier, so a fresh store over B's dir (no remote) hits locally.
    let store_b2 = Store::on_disk(&dir_b.0);
    assert!(store_b2
        .get::<Vec<f64>>("featurize", key("shared"))
        .is_some());
    assert_eq!(store_b2.stats().namespace("featurize").disk_hits, 1);
}

#[test]
fn remote_stat_and_gc_round_trip() {
    let server_dir = ScratchDir::new("statgc");
    let addr = start_server(&server_dir);
    let remote = RemoteTier::new(&addr);
    remote.put_bytes("ns", key("a"), &[9; 50]);
    remote.put_bytes("ns", key("b"), &[8; 50]);
    assert!(matches!(
        remote.get_bytes("ns", key("a")),
        TierLookup::Hit(_)
    ));

    let stats = remote.stats();
    assert_eq!(stats.kind, TierKind::Remote);
    assert!(stats.reachable);
    // mem tier + disk tier both hold the two entries.
    let tiers = remote.stat_remote().expect("reachable");
    assert_eq!(tiers.len(), 2);
    assert!(tiers.iter().all(|t| t.entries == 2));

    // Remote gc empties the server; local Store::gc must NOT have that
    // side effect (it skips remote tiers).
    let mut local = Store::in_memory();
    local.push_tier(Arc::new(RemoteTier::new(&addr)));
    let local_report = local.gc(0);
    assert_eq!(local_report.evicted_files, 0);
    assert!(matches!(
        remote.get_bytes("ns", key("a")),
        TierLookup::Hit(_)
    ));

    let report = remote.gc_remote(0).expect("reachable");
    assert!(report.evicted_files >= 2, "both tiers evicted");
    assert_eq!(remote.get_bytes("ns", key("a")), TierLookup::Miss);
}

#[test]
fn unreachable_server_degrades_to_cold_behavior() {
    let addr = dead_addr();
    let remote = Arc::new(RemoteTier::with_timeout(&addr, Duration::from_millis(300)));
    let mut store = Store::in_memory();
    store.push_tier(remote.clone());

    // Every operation behaves exactly like a cold store: computes, keeps
    // the decoded artifact locally, never errors.
    let mut calls = 0;
    let v = store.get_or_compute("ns", key("x"), || {
        calls += 1;
        42u64
    });
    assert_eq!((*v, calls), (42, 1));
    // Second lookup: decoded front cache, remote never consulted again
    // for this key.
    let v2 = store.get::<u64>("ns", key("x")).expect("front cache");
    assert!(Arc::ptr_eq(&v, &v2));

    // The tier trips open after a bounded number of failures and stays
    // a cheap no-op afterwards.
    for i in 0..10 {
        assert_eq!(
            remote.get_bytes("ns", key(&format!("probe{i}"))),
            TierLookup::Miss
        );
    }
    assert!(remote.is_down());
    assert!(!remote.stats().reachable);
    assert_eq!(remote.stat_remote(), None);
    assert_eq!(remote.gc_remote(0), None);
}

#[test]
fn garbage_speaking_server_degrades_to_misses() {
    // A "server" that answers every connection with bytes that are not a
    // wire frame: the client must read that as a protocol failure and
    // degrade to misses.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        use std::io::{Read, Write};
        for stream in listener.incoming().flatten() {
            let mut stream = stream;
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\n\r\nnot a frame");
        }
    });
    let remote = RemoteTier::with_timeout(&addr, Duration::from_millis(500));
    assert_eq!(remote.get_bytes("ns", key("y")), TierLookup::Miss);
    // And through a Store: the computation still runs and succeeds.
    let mut store = Store::in_memory();
    store.push_tier(Arc::new(RemoteTier::with_timeout(
        &addr,
        Duration::from_millis(500),
    )));
    let v = store.get_or_compute("ns", key("y"), || 7u64);
    assert_eq!(*v, 7);
}

#[test]
fn server_mem_tier_serves_without_touching_disk_layout() {
    // A memory-only "server stack" (what --mem-budget serves when the
    // disk is cold): parity between the byte MemTier and the remote path.
    let server_dir = ScratchDir::new("memparity");
    let addr = start_server(&server_dir);
    let remote = RemoteTier::new(&addr);
    let local = MemTier::new(1 << 20);
    let payload = vec![3u8; 128];
    remote.put_bytes("ns", key("p"), &payload);
    local.put_bytes("ns", key("p"), &payload);
    assert_eq!(
        remote.get_bytes("ns", key("p")),
        local.get_bytes("ns", key("p")),
        "remote and local tiers agree byte-for-byte"
    );
}
