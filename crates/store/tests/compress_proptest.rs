//! Property tests of the [`rtlt_store::compress`] payload codec: every
//! payload — including adversarial floating-point bit patterns — must
//! round-trip bit-exactly through `compress`/`decompress`, and damaged or
//! truncated frames must be *rejected* (never mis-decoded, never a panic)
//! so the store above degrades to recompute.

use proptest::prelude::*;
use proptest::strategy::Union;
use rtlt_store::{compress, ContentHash, KeyBuilder, MemTier, Store, StoreTier};
use std::sync::Arc;

fn key(label: &str) -> ContentHash {
    KeyBuilder::new("compress-proptest").str(label).finish()
}

/// f64 values that stress the sortable-bits/delta paths: NaNs with live
/// payload bits, signed zeros, infinities, denormals, plus ordinary and
/// fully arbitrary bit patterns.
fn adversarial_f64() -> Union<f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        // NaNs with arbitrary payload bits (quiet and signaling patterns).
        (0u64..(1 << 52)).prop_map(|p| f64::from_bits(0x7FF0_0000_0000_0000 | p | 1)),
        (0u64..(1 << 52)).prop_map(|p| f64::from_bits(0xFFF0_0000_0000_0000 | p | 1)),
        // Denormals: exponent 0, nonzero mantissa.
        (1u64..(1 << 52)).prop_map(f64::from_bits),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
        Just(f64::MIN),
        // Fully arbitrary bit patterns.
        (0u64..=u64::MAX).prop_map(f64::from_bits),
        -1e12f64..1e12,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_round_trip(payload in proptest::collection::vec(0u8..=255, 0..2048)) {
        let frame = compress::compress(&payload);
        let back = compress::decompress(&frame);
        prop_assert_eq!(back.as_deref(), Some(&payload[..]));
        prop_assert_eq!(compress::decoded_len(&frame), Some(payload.len() as u64));
        // The raw escape bounds the frame: never more than payload + tag.
        prop_assert!(frame.len() <= payload.len() + 1);
    }

    #[test]
    fn adversarial_f64_tables_round_trip_bit_exactly(
        values in proptest::collection::vec(adversarial_f64(), 0..256),
        header in proptest::collection::vec(0u8..=255, 0..9),
    ) {
        // Lay the floats out as the codec does: a small header (list
        // lengths etc.) followed by packed little-endian f64 words — the
        // header shifts the word alignment, which the byte-plane mode must
        // survive.
        let mut payload = header.clone();
        for v in &values {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let frame = compress::compress(&payload);
        let back = compress::decompress(&frame);
        prop_assert_eq!(back.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn monotone_columns_round_trip(
        start in -1e9f64..1e9,
        steps in proptest::collection::vec(0.0f64..1e6, 1..200),
    ) {
        // Monotone nondecreasing columns (arrival times, slacks sorted by
        // endpoint) are the compressor's best case; correctness first.
        let mut acc = start;
        let mut payload = Vec::new();
        for s in &steps {
            acc += s;
            payload.extend_from_slice(&acc.to_bits().to_le_bytes());
        }
        let frame = compress::compress(&payload);
        let back = compress::decompress(&frame);
        prop_assert_eq!(back.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn truncated_frames_are_rejected(
        values in proptest::collection::vec(adversarial_f64(), 8..64),
        cut_seed in 0usize..1_000_000,
    ) {
        let mut payload = Vec::new();
        for v in &values {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let frame = compress::compress(&payload);
        // Raw frames have no structure to validate a truncation against;
        // the entry checksum above catches those. Every structured mode
        // must reject every strict prefix itself.
        if frame[0] == compress::MODE_RAW {
            return Ok(());
        }
        let cut = cut_seed % frame.len();
        prop_assert_eq!(compress::decompress(&frame[..cut]), None);
    }

    #[test]
    fn corrupt_frames_never_panic_or_overrun(
        payload in proptest::collection::vec(0u8..=255, 1..1024),
        flip_seed in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let mut frame = compress::compress(&payload);
        let at = flip_seed % frame.len();
        frame[at] ^= 1 << bit;
        // A flipped frame may still decode (the entry checksum is the
        // integrity layer); what the codec itself guarantees is memory
        // safety and bounded output.
        if let Some(out) = compress::decompress(&frame) {
            prop_assert!(out.len() as u64 <= compress::MAX_DECODED);
        }
    }

    #[test]
    fn garbage_is_rejected_or_bounded(frame in proptest::collection::vec(0u8..=255, 0..512)) {
        if let Some(out) = compress::decompress(&frame) {
            prop_assert!(out.len() as u64 <= compress::MAX_DECODED);
        }
    }
}

#[test]
fn corrupt_compressed_entry_degrades_to_recompute() {
    // A tier entry whose envelope checksum passes but whose compress frame
    // is garbage: the store must heal the slot and recompute.
    let mem = Arc::new(MemTier::new(1 << 20));
    mem.put_bytes("featurize", key("bad"), &[1, 2, 3]);
    let store = Store::with_tiers(1 << 20, vec![mem.clone()]);
    assert!(store.get::<Vec<f64>>("featurize", key("bad")).is_none());
    let s = store.stats().namespace("featurize");
    assert_eq!((s.corrupt_entries, s.misses), (1, 1));
    let v = store.get_or_compute("featurize", key("bad"), || vec![1.5f64, -0.0]);
    assert_eq!(v.len(), 2);
    // The recompute healed the slot with a valid frame.
    let fresh = Store::with_tiers(0, vec![mem]);
    assert_eq!(
        *fresh
            .get::<Vec<f64>>("featurize", key("bad"))
            .expect("healed"),
        vec![1.5f64, -0.0]
    );
}

#[test]
fn truncated_disk_frame_degrades_to_recompute() {
    let dir = std::env::temp_dir().join(format!("rtlt-compress-trunc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::on_disk(&dir);
    // A compressible artifact so the on-disk frame is a real packed mode.
    let table: Vec<f64> = (0..512).map(|i| i as f64 * 0.25).collect();
    store.put("featurize", key("t"), table.clone());
    let path = std::fs::read_dir(dir.join("featurize"))
        .expect("ns dir")
        .next()
        .expect("one entry")
        .expect("dirent")
        .path();
    let bytes = std::fs::read(&path).expect("entry bytes");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    // A fresh store (no decoded cache) must treat it as corrupt + miss,
    // then recompute and heal.
    let fresh = Store::on_disk(&dir);
    assert!(fresh.get::<Vec<f64>>("featurize", key("t")).is_none());
    let s = fresh.stats().namespace("featurize");
    assert!(s.corrupt_entries >= 1);
    let v = fresh.get_or_compute("featurize", key("t"), || table.clone());
    assert_eq!(*v, table);
    let _ = std::fs::remove_dir_all(&dir);
}
