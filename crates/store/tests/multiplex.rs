//! The multiplexed wire path end to end: tagged exchanges against a real
//! event-loop server are matched by tag whatever the interleaving or the
//! byte-stream chunking looks like; a frame truncated mid-write is
//! reassembled, not dropped; and the pipelined client demultiplexes
//! out-of-order completions (put acks arriving around an awaited get).

use proptest::prelude::*;
use rtlt_store::plan::DEFAULT_LEASE_TIMEOUT;
use rtlt_store::server::{spawn, ServerConfig};
use rtlt_store::wire::{
    op, tag_request, tag_response, untag, Frame, Request, Response, PAYLOAD_ENCODING_FRAME,
};
use rtlt_store::{compress, ContentHash, KeyBuilder, RemoteTier, StoreTier, TierLookup};
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// One shared event-loop server for every test (and proptest case) in
/// this file; cases keep their state disjoint via per-case namespaces.
fn server_addr() -> &'static str {
    static SERVER: OnceLock<String> = OnceLock::new();
    SERVER.get_or_init(|| {
        let cfg = ServerConfig {
            dir: std::env::temp_dir().join(format!("rtlt-mux-{}", std::process::id())),
            mem_budget: 1 << 20,
            lease_timeout: DEFAULT_LEASE_TIMEOUT,
        };
        spawn("127.0.0.1:0", &cfg).expect("bind").to_string()
    })
}

fn key_of(n: u64) -> ContentHash {
    KeyBuilder::new("mux").u64(n).finish()
}

fn connect() -> TcpStream {
    let stream = TcpStream::connect(server_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
}

/// What one tagged request should come back as.
enum Expected {
    Done,
    Exact(Response),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of tagged PUT2/GET2 requests — written as
    /// one byte stream cut at arbitrary chunk boundaries — come back with
    /// every response matched to its request by tag, and every GET answer
    /// equal to what a sequential execution of the same requests yields.
    #[test]
    fn tagged_interleavings_match_responses_by_tag(
        ops in proptest::collection::vec(
            (0u8..2, 0u64..3, proptest::collection::vec(0u8..=255, 0..64)),
            1..10,
        ),
        tag_seed in 0u64..u64::MAX / 2,
        chunk in 1usize..96,
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let ns = format!("mux{case}");

        // Requests are processed in arrival order on one connection, so a
        // sequential simulation is the ground truth for every GET.
        let mut stream_bytes = Vec::new();
        let mut expected: HashMap<u64, Expected> = HashMap::new();
        let mut state: HashMap<u64, Vec<u8>> = HashMap::new();
        for (i, (kind, slot, payload)) in ops.iter().enumerate() {
            // Distinct odd-multiplier tags: arbitrary, unique, unordered.
            let tag = tag_seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            let key = key_of(*slot);
            let req = if *kind == 0 {
                let frame = compress::raw_frame(payload);
                state.insert(*slot, frame.clone());
                expected.insert(tag, Expected::Done);
                Request::Put2 {
                    ns: ns.clone(),
                    key,
                    encoding: PAYLOAD_ENCODING_FRAME,
                    payload: frame,
                }
            } else {
                expected.insert(tag, Expected::Exact(match state.get(slot) {
                    Some(frame) => Response::Hit(frame.clone()),
                    None => Response::Miss,
                }));
                Request::Get2 {
                    ns: ns.clone(),
                    key,
                    encoding: PAYLOAD_ENCODING_FRAME,
                }
            };
            stream_bytes.extend(tag_request(tag, &req.to_frame()).to_bytes());
        }

        let mut sock = connect();
        for piece in stream_bytes.chunks(chunk) {
            sock.write_all(piece).expect("write chunk");
        }
        let mut got: HashMap<u64, Response> = HashMap::new();
        for _ in 0..ops.len() {
            let frame = Frame::read_from(&mut sock).expect("tagged response");
            prop_assert_eq!(frame.op, op::TAGGED_RESP);
            let (tag, inner) = untag(&frame).expect("well-formed envelope");
            let prev = got.insert(tag, Response::from_frame(&inner).expect("response"));
            prop_assert!(prev.is_none(), "one response per tag");
        }
        prop_assert_eq!(got.len(), expected.len());
        for (tag, want) in &expected {
            let answer = got.get(tag).expect("every tag answered");
            match want {
                Expected::Done => prop_assert!(matches!(answer, Response::Done(_))),
                Expected::Exact(resp) => prop_assert_eq!(answer, resp),
            }
        }
    }
}

/// A request frame cut mid-header and mid-body — with real pauses, so the
/// event loop ticks over a partially buffered frame — is reassembled and
/// answered; the connection stays healthy for the next exchange.
#[test]
fn truncated_mid_frame_writes_reassemble_across_ticks() {
    let ns = "mux-truncated";
    let payload = compress::raw_frame(&vec![7u8; 512]);
    let mut sock = connect();

    let put = tag_request(
        1,
        &Request::Put2 {
            ns: ns.to_owned(),
            key: key_of(1),
            encoding: PAYLOAD_ENCODING_FRAME,
            payload: payload.clone(),
        }
        .to_frame(),
    )
    .to_bytes();
    // Three cuts: inside the frame header, inside the body, the rest —
    // each separated by sleeps longer than the server's poll interval.
    for piece in [&put[..9], &put[9..40], &put[40..]] {
        sock.write_all(piece).expect("partial write");
        sock.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
    }
    let frame = Frame::read_from(&mut sock).expect("put answered");
    let (tag, inner) = untag(&frame).expect("tagged");
    assert_eq!(tag, 1);
    assert!(matches!(
        Response::from_frame(&inner).expect("response"),
        Response::Done(_)
    ));

    // Same connection, same trickle, now a GET: the reassembler state was
    // left clean by the previous frame.
    let get = tag_request(
        2,
        &Request::Get2 {
            ns: ns.to_owned(),
            key: key_of(1),
            encoding: PAYLOAD_ENCODING_FRAME,
        }
        .to_frame(),
    )
    .to_bytes();
    let cut = get.len() / 2;
    for piece in [&get[..cut], &get[cut..]] {
        sock.write_all(piece).expect("partial write");
        sock.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
    }
    let frame = Frame::read_from(&mut sock).expect("get answered");
    let (tag, inner) = untag(&frame).expect("tagged");
    assert_eq!(tag, 2);
    assert_eq!(
        Response::from_frame(&inner).expect("response"),
        Response::Hit(payload)
    );
}

/// The pipelined client against a scripted peer that completes exchanges
/// **out of order**: fire-and-forget put acks arrive interleaved around
/// the awaited get answer, in scrambled order. The demux absorbs acks by
/// tag, hands the get its own answer, and `flush` drains the stragglers —
/// five requests, two wire turnarounds.
#[test]
fn out_of_order_completions_demux_by_tag() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let served = compress::raw_frame(b"out-of-order payload");
    let served_for_script = served.clone();

    let script = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("one connection");
        let read_tagged = |stream: &mut TcpStream| -> (u64, Frame) {
            let frame = Frame::read_from(stream).expect("request");
            assert_eq!(frame.op, op::TAGGED, "pipelined client always tags");
            untag(&frame).expect("envelope")
        };
        // The client's first contact is a synchronous probe: answer it in
        // kind so the peer is pinned tagged and puts start pipelining.
        let (probe_tag, probe) = read_tagged(&mut stream);
        assert_eq!(probe.op, op::PUT2);
        tag_response(probe_tag, &Response::Done(Default::default()).to_frame())
            .write_to(&mut stream)
            .expect("probe ack");
        // Then three fire-and-forget puts and one awaited get arrive
        // without any intervening read on the client side.
        let mut puts = Vec::new();
        let mut get_tag = None;
        for _ in 0..4 {
            let (tag, inner) = read_tagged(&mut stream);
            match inner.op {
                op::PUT2 => puts.push(tag),
                op::GET2 => get_tag = Some(tag),
                other => panic!("unexpected op {other}"),
            }
        }
        let get_tag = get_tag.expect("one get");
        assert_eq!(puts.len(), 3);
        // Scrambled completion: last put first, then the get's answer,
        // then the remaining acks in reverse.
        for (tag, resp) in [
            (puts[2], Response::Done(Default::default())),
            (get_tag, Response::Hit(served_for_script)),
            (puts[1], Response::Done(Default::default())),
            (puts[0], Response::Done(Default::default())),
        ] {
            tag_response(tag, &resp.to_frame())
                .write_to(&mut stream)
                .expect("scrambled response");
        }
    });

    let remote = RemoteTier::with_options(&addr, Duration::from_secs(10), true);
    let frame = compress::raw_frame(b"x");
    for i in 0..4 {
        remote.put_bytes("mux-ooo", key_of(i), &frame);
    }
    assert_eq!(
        remote.get_bytes("mux-ooo", key_of(9)),
        TierLookup::Hit(served),
        "the awaited get received its own answer, not a put ack"
    );
    remote.flush();
    script.join().expect("script thread");

    assert_eq!(remote.peer_tagged(), Some(true));
    assert!(!remote.is_down());
    assert_eq!(
        remote.wire_round_trips(),
        2,
        "probe + one shared turnaround for 3 puts, 1 get and the drain"
    );
    // The drain left nothing pending: a second flush has nothing to read
    // and must not block or fail.
    remote.flush();
    assert!(!remote.is_down());
}
