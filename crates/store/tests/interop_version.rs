//! Mixed-version interop: a fleet upgrades one node at a time, so a new
//! client must complete against an old server (and an old client against a
//! new server) **byte-identically** — falling back to the v1 data ops
//! without tripping the failure breaker — before anyone relies on the
//! compressed v2 ops.

use rtlt_store::server::{spawn, ArtifactServer, ServerConfig};
use rtlt_store::wire::{op, Frame, Request, Response, MAX_BATCH_CHUNK, PAYLOAD_ENCODING_FRAME};
use rtlt_store::{
    compress, Codec, ContentHash, KeyBuilder, RemoteTier, Store, StoreTier, TierLookup,
};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

fn key(label: &str) -> ContentHash {
    KeyBuilder::new("interop").str(label).finish()
}

type LegacyState = Arc<Mutex<HashMap<(String, ContentHash), Vec<u8>>>>;

/// A faithful pre-v2 `rtlt-stored`: it knows only opcodes 1..=9 and
/// answers anything else as `Failed` (exactly what the old
/// `serve_connection` did with an unparseable request), and its tiers hold
/// **bare logical payloads** — no compress frames existed yet.
fn spawn_legacy_server() -> (String, LegacyState) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let state: LegacyState = Default::default();
    let shared = Arc::clone(&state);
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            let state = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut stream = stream;
                loop {
                    let frame = match Frame::read_opt(&mut stream) {
                        Ok(Some(f)) => f,
                        _ => return,
                    };
                    // An old build has no v2 ops in its parser: any opcode
                    // past PLANSTAT is "malformed request", answered as a
                    // typed failure on the still-alive connection.
                    let resp = if frame.op > op::PLANSTAT {
                        Response::Failed(format!("request opcode {}", frame.op))
                    } else {
                        match Request::from_frame(&frame) {
                            Ok(Request::Get { ns, key }) => {
                                match state.lock().expect("state").get(&(ns, key)) {
                                    Some(p) => Response::Hit(p.clone()),
                                    None => Response::Miss,
                                }
                            }
                            Ok(Request::Put { ns, key, payload }) => {
                                state.lock().expect("state").insert((ns, key), payload);
                                Response::Done(Default::default())
                            }
                            Ok(Request::GetBatch { items }) => {
                                let map = state.lock().expect("state");
                                Response::BatchPart {
                                    items: items
                                        .iter()
                                        .enumerate()
                                        .map(|(i, (ns, key))| {
                                            (i as u64, map.get(&(ns.clone(), *key)).cloned())
                                        })
                                        .collect(),
                                    last: true,
                                }
                            }
                            _ => Response::Failed("unsupported in this test double".into()),
                        }
                    };
                    if resp.to_frame().write_to(&mut stream).is_err() {
                        return;
                    }
                }
            });
        }
    });
    (addr, state)
}

/// A faithful generation-2 `rtlt-stored`: it speaks every untagged opcode
/// including the compressed data ops (`GET2`/`PUT2`/`GETM2`) over a real
/// [`ArtifactServer`], but predates tagged envelopes — anything past
/// `GETM2` is answered `Failed`, exactly what the blocking v2 loop did
/// with an unknown opcode.
fn spawn_v2_server(dir: std::path::PathBuf) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = Arc::new(ArtifactServer::new(&ServerConfig {
        dir,
        mem_budget: 1 << 20,
        lease_timeout: rtlt_store::plan::DEFAULT_LEASE_TIMEOUT,
    }));
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut stream = stream;
                loop {
                    let frame = match Frame::read_opt(&mut stream) {
                        Ok(Some(f)) => f,
                        _ => return,
                    };
                    if frame.op > op::GETM2 {
                        let failed = Response::Failed(format!("request opcode {}", frame.op));
                        if failed.to_frame().write_to(&mut stream).is_err() {
                            return;
                        }
                        continue;
                    }
                    let ok = match Request::from_frame(&frame) {
                        Ok(Request::GetBatch { items }) => server
                            .stream_batch(&items, MAX_BATCH_CHUNK, false, |part| {
                                part.to_frame().write_to(&mut stream)
                            })
                            .is_ok(),
                        Ok(Request::GetBatch2 { items, encoding })
                            if encoding == PAYLOAD_ENCODING_FRAME =>
                        {
                            server
                                .stream_batch(&items, MAX_BATCH_CHUNK, true, |part| {
                                    part.to_frame().write_to(&mut stream)
                                })
                                .is_ok()
                        }
                        Ok(Request::GetBatch2 { .. }) => Response::BatchPart {
                            items: Vec::new(),
                            last: true,
                        }
                        .to_frame()
                        .write_to(&mut stream)
                        .is_ok(),
                        Ok(req) => server.handle(req).to_frame().write_to(&mut stream).is_ok(),
                        Err(e) => Response::Failed(e.to_string())
                            .to_frame()
                            .write_to(&mut stream)
                            .is_ok(),
                    };
                    if !ok {
                        return;
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn new_client_falls_back_against_an_old_server() {
    let (addr, state) = spawn_legacy_server();
    let artifact: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();

    // A new-build store writes through to the legacy server…
    let mut writer = Store::in_memory();
    let remote = Arc::new(RemoteTier::new(&addr));
    writer.push_tier(remote.clone());
    writer.put("featurize", key("x"), artifact.clone());

    // …as *logical* bytes: the PUT2 frame was refused, the client pinned
    // the peer legacy and re-sent a v1 PUT with the decoded payload.
    assert!(remote.peer_legacy(), "one refused v2 op pins the fallback");
    assert!(!remote.is_down(), "a legacy peer is not a dead peer");
    assert_eq!(
        state
            .lock()
            .expect("state")
            .get(&("featurize".into(), key("x"))),
        Some(&artifact.to_bytes()),
        "the old server stores exactly what an old client would have sent"
    );

    // A second new-build client reads it back byte-identically, per-key…
    let mut reader = Store::in_memory();
    let remote_r = Arc::new(RemoteTier::new(&addr));
    reader.push_tier(remote_r.clone());
    assert_eq!(
        *reader
            .get::<Vec<f64>>("featurize", key("x"))
            .expect("served via v1 GET"),
        artifact
    );
    // …and batched (GETM2 refused → legacy GETM, hits lifted into raw
    // frames so the tier contract stays uniform).
    let batch = remote_r.get_bytes_batch(&[
        ("featurize".to_owned(), key("x")),
        ("featurize".to_owned(), key("missing")),
    ]);
    assert_eq!(
        batch[0],
        TierLookup::Hit(compress::raw_frame(&artifact.to_bytes()))
    );
    assert_eq!(batch[1], TierLookup::Miss);
    assert!(!remote_r.is_down(), "breaker never tripped by version skew");

    let s = reader.stats().namespace("featurize");
    assert_eq!((s.remote_hits, s.misses), (1, 0));
}

#[test]
fn mixed_v2_v3_fleet_interoperates_byte_identically() {
    let scratch = std::env::temp_dir().join(format!("rtlt-interop-mixed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let v3_cfg = ServerConfig {
        dir: scratch.join("v3"),
        mem_budget: 1 << 20,
        lease_timeout: rtlt_store::plan::DEFAULT_LEASE_TIMEOUT,
    };
    let v3_addr = spawn("127.0.0.1:0", &v3_cfg).expect("bind").to_string();
    let v2_addr = spawn_v2_server(scratch.join("v2"));

    // One new-build client per server writes the same artifact. The v3
    // peer negotiates tagged multiplexing (first contact probes); the v2
    // peer refuses the envelope and pins serialized framing — but keeps
    // speaking the compressed data ops, so it is *not* legacy.
    let artifact: Vec<f64> = (0..300).map(|i| i as f64 * 0.125 - 3.0).collect();
    let frame = compress::compress(&artifact.to_bytes());
    let v3 = RemoteTier::new(&v3_addr);
    let v2 = RemoteTier::new(&v2_addr);
    for remote in [&v3, &v2] {
        remote.put_bytes("featurize", key("mixed"), &frame);
        remote.flush();
    }
    assert_eq!(v3.peer_tagged(), Some(true), "gen-3 peer multiplexes");
    assert_eq!(v2.peer_tagged(), Some(false), "gen-2 peer serializes");
    assert!(!v2.peer_legacy(), "a v2 peer still speaks the data ops");
    assert!(
        !v2.is_down(),
        "the envelope refusal is healthy, not a failure"
    );

    // Fresh readers pull the artifact back from both generations,
    // per-key and batched, byte-identically.
    for addr in [&v3_addr, &v2_addr] {
        let mut store = Store::in_memory();
        store.push_tier(Arc::new(RemoteTier::new(addr)));
        assert_eq!(
            *store
                .get::<Vec<f64>>("featurize", key("mixed"))
                .expect("served"),
            artifact
        );
        let reader = RemoteTier::new(addr);
        let batch = reader.get_bytes_batch(&[
            ("featurize".to_owned(), key("mixed")),
            ("featurize".to_owned(), key("absent")),
        ]);
        assert_eq!(batch[0], TierLookup::Hit(frame.clone()));
        assert_eq!(batch[1], TierLookup::Miss);
        assert!(!reader.is_down());
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn old_client_speaks_v1_against_a_new_server() {
    let scratch = std::env::temp_dir().join(format!("rtlt-interop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cfg = ServerConfig {
        dir: scratch.clone(),
        mem_budget: 1 << 20,
        lease_timeout: rtlt_store::plan::DEFAULT_LEASE_TIMEOUT,
    };
    let addr = spawn("127.0.0.1:0", &cfg).expect("bind");
    let artifact: Vec<f64> = (0..200).map(|i| -1.0 + i as f64 * 0.25).collect();
    let logical = artifact.to_bytes();

    // An old client: hand-written v1 frames on a raw socket (the v1 wire
    // format is unchanged — only new opcodes were added).
    let mut stream = TcpStream::connect(addr).expect("connect");
    let exchange = |stream: &mut TcpStream, req: &Request| -> Response {
        req.to_frame().write_to(stream).expect("write");
        Response::from_frame(&Frame::read_from(stream).expect("read")).expect("parse")
    };
    assert!(matches!(
        exchange(
            &mut stream,
            &Request::Put {
                ns: "featurize".into(),
                key: key("y"),
                payload: logical.clone(),
            }
        ),
        Response::Done(_)
    ));
    // The new server decompresses at the v1 boundary: the old client gets
    // back exactly the bytes it stored, whatever the tiers hold inside.
    assert_eq!(
        exchange(
            &mut stream,
            &Request::Get {
                ns: "featurize".into(),
                key: key("y"),
            }
        ),
        Response::Hit(logical.clone())
    );

    // And a new client sees the same artifact through the v2 ops — one
    // cache, two protocol generations, identical bytes.
    let mut store = Store::in_memory();
    store.push_tier(Arc::new(RemoteTier::new(addr.to_string())));
    assert_eq!(
        *store
            .get::<Vec<f64>>("featurize", key("y"))
            .expect("v2 path"),
        artifact
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
