//! Integration tests of the two-tier store: on-disk persistence across
//! store instances (the "across processes" contract — a fresh `Store` has
//! no memory tier to lean on), corruption fallback, and interaction with
//! the `rtlt-runtime` executor the pipeline threads it through.

use proptest::prelude::*;
use rtlt_store::{Codec, ContentHash, Enc, KeyBuilder, Store};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique scratch directory per test, best-effort removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rtlt-store-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key(label: &str) -> ContentHash {
    KeyBuilder::new("integration").str(label).finish()
}

#[test]
fn disk_entries_survive_into_a_fresh_store_instance() {
    let scratch = ScratchDir::new("persist");
    let value = vec![1.5f64, f64::NAN, -0.0, 1e300];

    let writer = Store::on_disk(&scratch.0);
    writer.put("stage", key("a"), value.clone());

    // A brand-new store over the same directory (≈ a second process: no
    // shared memory tier, keys re-derived from scratch) hits on disk.
    let reader = Store::on_disk(&scratch.0);
    let got = reader.get::<Vec<f64>>("stage", key("a")).expect("disk hit");
    assert_eq!(got.len(), value.len());
    assert_eq!(got[0], 1.5);
    assert!(got[1].is_nan());
    assert_eq!(got[2].to_bits(), (-0.0f64).to_bits());
    assert_eq!(got[3], 1e300);
    let s = reader.stats().namespace("stage");
    assert_eq!((s.disk_hits, s.mem_hits, s.misses), (1, 0, 0));

    // Promotion: the second lookup is served from memory.
    let _ = reader.get::<Vec<f64>>("stage", key("a")).expect("mem hit");
    assert_eq!(reader.stats().namespace("stage").mem_hits, 1);
}

#[test]
fn content_keys_are_identical_across_builders() {
    // Same inputs, independently constructed builders (no shared state):
    // the disk tier relies on this to be stable across processes.
    let a = KeyBuilder::new("stage")
        .str("design")
        .u64(2024)
        .f64(0.6)
        .finish();
    let b = KeyBuilder::new("stage")
        .str("design")
        .u64(2024)
        .f64(0.6)
        .finish();
    assert_eq!(a, b);
    assert_eq!(a.to_hex(), b.to_hex());
    // And any input change moves the key.
    assert_ne!(
        a,
        KeyBuilder::new("stage")
            .str("design")
            .u64(2025)
            .f64(0.6)
            .finish()
    );
}

#[test]
fn corrupted_disk_entry_falls_back_to_recompute() {
    let scratch = ScratchDir::new("corrupt");
    let store = Store::on_disk(&scratch.0);
    store.put("ns", key("x"), 1234u64);

    // Flip one payload byte in the single entry file.
    let entry = find_entry(&scratch.0);
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() - 9; // inside the payload, before the checksum
    bytes[mid] ^= 0xFF;
    std::fs::write(&entry, &bytes).unwrap();

    let fresh = Store::on_disk(&scratch.0);
    let mut computed = false;
    let v = fresh.get_or_compute("ns", key("x"), || {
        computed = true;
        1234u64
    });
    assert!(computed, "corrupt entry must recompute");
    assert_eq!(*v, 1234);
    let s = fresh.stats().namespace("ns");
    assert_eq!(s.corrupt_entries, 1);
    assert_eq!(s.misses, 1);

    // The recompute rewrote a valid entry.
    let healed = Store::on_disk(&scratch.0);
    assert_eq!(*healed.get::<u64>("ns", key("x")).expect("healed"), 1234);
}

#[test]
fn truncated_disk_entry_falls_back_to_recompute() {
    let scratch = ScratchDir::new("truncate");
    let store = Store::on_disk(&scratch.0);
    store.put("ns", key("t"), vec![7u64; 32]);

    let entry = find_entry(&scratch.0);
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();

    let fresh = Store::on_disk(&scratch.0);
    assert!(fresh.get::<Vec<u64>>("ns", key("t")).is_none());
    assert_eq!(fresh.stats().namespace("ns").corrupt_entries, 1);
    // The bad file was dropped so the slot can heal.
    assert!(!entry.exists());
}

fn find_entry(root: &std::path::Path) -> PathBuf {
    fn walk(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
        for e in std::fs::read_dir(dir).unwrap() {
            let p = e.unwrap().path();
            if p.is_dir() {
                walk(&p, out);
            } else if p.extension().is_some_and(|x| x == "bin") {
                out.push(p);
            }
        }
    }
    let mut found = Vec::new();
    walk(root, &mut found);
    assert_eq!(found.len(), 1, "expected exactly one entry under {root:?}");
    found.into_iter().next().unwrap()
}

#[test]
fn gc_evicts_oldest_entries_until_under_budget() {
    let scratch = ScratchDir::new("gc");
    let mut store = Store::on_disk(&scratch.0);
    // Raw payloads: this test reasons about equal-sized files to pin down
    // the LRU order, which compression would perturb.
    store.set_tier_policy(rtlt_store::TierPolicy::parse("*=raw").expect("policy"));
    // Three entries with strictly increasing mtimes (set explicitly so the
    // test does not depend on filesystem timestamp resolution).
    for (i, label) in ["old", "mid", "new"].iter().enumerate() {
        store.put("ns", key(label), vec![i as u64; 64]);
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(scratch.0.join("ns"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    paths.sort();
    let base = std::time::SystemTime::now() - std::time::Duration::from_secs(600);
    for (i, label) in ["old", "mid", "new"].iter().enumerate() {
        let p = scratch
            .0
            .join("ns")
            .join(format!("{}.bin", key(label).to_hex()));
        let t = std::fs::FileTimes::new()
            .set_modified(base + std::time::Duration::from_secs(60 * i as u64));
        std::fs::File::options()
            .append(true)
            .open(&p)
            .unwrap()
            .set_times(t)
            .unwrap();
    }

    let usage = store.disk_usage();
    assert_eq!(usage.len(), 1);
    let (ns, files, bytes) = &usage[0];
    assert_eq!((ns.as_str(), *files), ("ns", 3));
    let per_entry = bytes / 3;

    // Budget for two entries: the oldest one goes.
    let report = store.gc(per_entry * 2);
    assert_eq!(report.scanned_files, 3);
    assert_eq!(report.evicted_files, 1);
    assert!(report.remaining_bytes <= per_entry * 2);
    let fresh = Store::on_disk(&scratch.0);
    assert!(fresh.get::<Vec<u64>>("ns", key("old")).is_none(), "evicted");
    assert!(fresh.get::<Vec<u64>>("ns", key("mid")).is_some());
    assert!(fresh.get::<Vec<u64>>("ns", key("new")).is_some());

    // Budget 0 clears everything; a memory-only store's gc is a no-op.
    let report = store.gc(0);
    assert_eq!(report.remaining_bytes, 0);
    assert_eq!(Store::in_memory().gc(0), rtlt_store::GcReport::default());
}

#[test]
fn disk_reads_refresh_lru_order() {
    let scratch = ScratchDir::new("gc-touch");
    let store = Store::on_disk(&scratch.0);
    store.put("ns", key("a"), vec![1u64; 64]);
    store.put("ns", key("b"), vec![2u64; 64]);
    // Backdate both entries, then read only `a` (through a fresh store so
    // the lookup goes to disk): the read must refresh `a`'s mtime.
    let backdate = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
    for label in ["a", "b"] {
        let p = scratch
            .0
            .join("ns")
            .join(format!("{}.bin", key(label).to_hex()));
        std::fs::File::options()
            .append(true)
            .open(&p)
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(backdate))
            .unwrap();
    }
    let reader = Store::on_disk(&scratch.0);
    assert!(reader.get::<Vec<u64>>("ns", key("a")).is_some());

    // Budget for one entry: the unread `b` is the LRU victim.
    let usage = reader.disk_usage();
    let per_entry = usage[0].2 / 2;
    let report = reader.gc(per_entry);
    assert_eq!(report.evicted_files, 1);
    let fresh = Store::on_disk(&scratch.0);
    assert!(
        fresh.get::<Vec<u64>>("ns", key("a")).is_some(),
        "recently read survives"
    );
    assert!(
        fresh.get::<Vec<u64>>("ns", key("b")).is_none(),
        "unread entry evicted"
    );
}

#[test]
fn try_par_map_stays_deterministic_with_a_shared_store() {
    // The pipeline's contract: when several workers fail concurrently
    // while all of them also hit a shared store handle, the surfaced error
    // is still the lowest-indexed one, and successful artifacts written
    // before the failure remain valid.
    let store = Arc::new(Store::in_memory());
    let items: Vec<usize> = (0..64).collect();
    for round in 0..10 {
        let computed = AtomicUsize::new(0);
        let err = rtlt_runtime::try_par_map(8, &items, |&i| {
            // Everyone touches the store first (mem tier contention).
            let v = store.get_or_compute("work", key(&format!("item{i}")), || {
                computed.fetch_add(1, Ordering::Relaxed);
                i as u64
            });
            assert_eq!(*v, i as u64);
            // Items 11 and 43 fail on every round; 29 fails late.
            match i {
                11 | 43 => Err(format!("fail {i}")),
                29 => {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    Err(format!("fail {i}"))
                }
                _ => Ok(i),
            }
        })
        .unwrap_err();
        assert_eq!(err, "fail 11", "round {round}");
    }
    // Artifacts memoized on earlier rounds were reused, not recomputed:
    // ten rounds over 64 items but at most 64 misses ever.
    let s = store.stats().namespace("work");
    assert!(s.mem_hits > 0);
    assert!(s.misses <= 64, "misses = {}", s.misses);
    assert_eq!(*store.get::<u64>("work", key("item0")).unwrap(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Codec round-trip over a composite artifact shape: every value
    /// decodes back bit-exactly from its own encoding.
    #[test]
    fn codec_round_trips_composite_values(
        floats in proptest::collection::vec(-1e12f64..1e12, 0..64),
        ints in proptest::collection::vec(0u64..u64::MAX, 0..32),
        word in "|a|ab|design_név|u0.state\\[3\\]|àéîœ∞",
        flag in Just(true),
    ) {
        let value = (
            (word.clone(), floats.clone()),
            (ints.clone(), vec![flag, !flag]),
        );
        let bytes = value.to_bytes();
        let back = <((String, Vec<f64>), (Vec<u64>, Vec<bool>))>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.0 .0, &word);
        prop_assert_eq!(&back.0 .1, &floats);
        prop_assert_eq!(&back.1 .0, &ints);
        prop_assert!(back.1.1 == vec![flag, !flag]);
    }

    /// Nested sequence round-trip (the `tok_feats`-like shape), plus the
    /// truncation contract: any strict prefix fails to decode rather than
    /// yielding a wrong value.
    #[test]
    fn codec_rejects_all_truncations(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 0..8),
            1..12,
        ),
    ) {
        let bytes = rows.to_bytes();
        let back = Vec::<Vec<f64>>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &rows);
        // Strict prefixes never decode to a full value.
        let step = (bytes.len() / 16).max(1);
        let mut cut = 0;
        while cut < bytes.len() {
            prop_assert!(Vec::<Vec<f64>>::from_bytes(&bytes[..cut]).is_err());
            cut += step;
        }
    }

    /// Distinct byte strings never collide on their content hash (a
    /// collision within proptest's reach would mean the hash is broken).
    #[test]
    fn content_hashes_of_distinct_inputs_differ(
        a in proptest::collection::vec(0u8..=255, 0..128),
        b in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        let mut ea = Enc::new();
        ea.raw(&a);
        let mut eb = Enc::new();
        eb.raw(&b);
        let ha = ContentHash::of_bytes(&ea.into_bytes());
        let hb = ContentHash::of_bytes(&eb.into_bytes());
        prop_assert_eq!(a == b, ha == hb);
    }
}
