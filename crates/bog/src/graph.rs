//! BOG node/graph types and the strashing builder.

use std::collections::HashMap;
use std::fmt;

/// Node identifier inside a [`Bog`].
pub type NodeId = u32;

/// Sentinel for unused fanin slots.
pub const NO_NODE: NodeId = NodeId::MAX;

/// Boolean operator alphabet of the universal BOG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BogOp {
    /// Primary input bit.
    Input,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input mux; fanins are (sel, t, f).
    Mux2,
    /// D flip-flop (Q output). The D pin lives in [`BogReg::d`].
    Dff,
}

impl BogOp {
    /// Number of used fanin slots.
    pub fn arity(self) -> usize {
        match self {
            BogOp::Input | BogOp::Const0 | BogOp::Const1 | BogOp::Dff => 0,
            BogOp::Not => 1,
            BogOp::And2 | BogOp::Or2 | BogOp::Xor2 => 2,
            BogOp::Mux2 => 3,
        }
    }

    /// Whether this is a combinational operator (counted as a pseudo cell).
    pub fn is_comb(self) -> bool {
        !matches!(
            self,
            BogOp::Input | BogOp::Const0 | BogOp::Const1 | BogOp::Dff
        )
    }
}

impl fmt::Display for BogOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BogOp::Input => "IN",
            BogOp::Const0 => "C0",
            BogOp::Const1 => "C1",
            BogOp::Not => "NOT",
            BogOp::And2 => "AND",
            BogOp::Or2 => "OR",
            BogOp::Xor2 => "XOR",
            BogOp::Mux2 => "MUX",
            BogOp::Dff => "DFF",
        };
        f.write_str(s)
    }
}

/// The four concrete representation variants (paper §3.1 / Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BogVariant {
    /// Simple-operator graph — full alphabet, closest to the mapped netlist.
    Sog,
    /// And-inverter graph.
    Aig,
    /// And-inverter-mux graph.
    Aimg,
    /// Xor-and graph.
    Xag,
}

impl BogVariant {
    /// All variants in the paper's order.
    pub const ALL: [BogVariant; 4] = [
        BogVariant::Sog,
        BogVariant::Aig,
        BogVariant::Aimg,
        BogVariant::Xag,
    ];

    /// Whether `op` is allowed in this variant.
    pub fn allows(self, op: BogOp) -> bool {
        match op {
            BogOp::Or2 => self == BogVariant::Sog,
            BogOp::Xor2 => matches!(self, BogVariant::Sog | BogVariant::Xag),
            BogOp::Mux2 => matches!(self, BogVariant::Sog | BogVariant::Aimg),
            _ => true,
        }
    }
}

impl fmt::Display for BogVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BogVariant::Sog => "SOG",
            BogVariant::Aig => "AIG",
            BogVariant::Aimg => "AIMG",
            BogVariant::Xag => "XAG",
        };
        f.write_str(s)
    }
}

/// A BOG node: operator plus up to three fanins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BogNode {
    /// Operator.
    pub op: BogOp,
    /// Fanins; unused slots are [`NO_NODE`].
    pub fanins: [NodeId; 3],
}

/// A bit-level register (one D flip-flop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BogReg {
    /// The `Dff` node (Q pin).
    pub q: NodeId,
    /// D input driver — the timing endpoint for this bit.
    pub d: NodeId,
    /// Owning RTL signal (index into [`Bog::signals`]).
    pub signal: u32,
    /// Bit position within the signal.
    pub bit: u32,
}

/// An RTL sequential signal (word register) and its bit endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    /// Hierarchical RTL name (e.g. `u0.state`).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Indices into [`Bog::regs`], LSB first.
    pub regs: Vec<u32>,
    /// 1-based declaration line in its module source.
    pub decl_line: u32,
    /// Declared in the top module (directly annotatable).
    pub top_level: bool,
}

/// A timing endpoint: a register D pin or a primary output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Register endpoint (index into [`Bog::regs`]).
    Reg(u32),
    /// Primary-output endpoint (index into [`Bog::outputs`]).
    Output(u32),
}

/// A bit-level Boolean operator graph.
#[derive(Debug, Clone)]
pub struct Bog {
    /// Design name.
    pub name: String,
    /// Representation variant.
    pub variant: BogVariant,
    pub(crate) nodes: Vec<BogNode>,
    /// Input bit nodes with names like `a[3]`.
    pub(crate) inputs: Vec<(String, NodeId)>,
    /// Output bits with names like `q[0]`.
    pub(crate) outputs: Vec<(String, NodeId)>,
    pub(crate) regs: Vec<BogReg>,
    pub(crate) signals: Vec<SignalInfo>,
}

impl Bog {
    /// Node accessor.
    pub fn node(&self, id: NodeId) -> BogNode {
        self.nodes[id as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[BogNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Input bits `(name, node)`.
    pub fn inputs(&self) -> &[(String, NodeId)] {
        &self.inputs
    }

    /// Output bits `(name, driver node)`.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Bit-level registers.
    pub fn regs(&self) -> &[BogReg] {
        &self.regs
    }

    /// RTL sequential signals.
    pub fn signals(&self) -> &[SignalInfo] {
        &self.signals
    }

    /// Used fanins of a node.
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        let n = &self.nodes[id as usize];
        &n.fanins[..n.op.arity()]
    }

    /// All timing endpoints: register D pins first, then primary outputs.
    pub fn endpoints(&self) -> Vec<Endpoint> {
        (0..self.regs.len() as u32)
            .map(Endpoint::Reg)
            .chain((0..self.outputs.len() as u32).map(Endpoint::Output))
            .collect()
    }

    /// The driver node of an endpoint (register D pin or output bit).
    pub fn endpoint_node(&self, ep: Endpoint) -> NodeId {
        match ep {
            Endpoint::Reg(i) => self.regs[i as usize].d,
            Endpoint::Output(i) => self.outputs[i as usize].1,
        }
    }

    /// Human-readable endpoint name (`signal[bit]` or output bit name).
    pub fn endpoint_name(&self, ep: Endpoint) -> String {
        match ep {
            Endpoint::Reg(i) => {
                let r = &self.regs[i as usize];
                let s = &self.signals[r.signal as usize];
                format!("{}[{}]", s.name, r.bit)
            }
            Endpoint::Output(i) => self.outputs[i as usize].0.clone(),
        }
    }

    /// Topological order of all nodes (fanins before fanouts); `Dff`,
    /// `Input` and constants are sources.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg = vec![0u32; n];
        let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for id in 0..n as NodeId {
            for &f in self.fanins(id) {
                indeg[id as usize] += 1;
                fanouts[f as usize].push(id);
            }
        }
        let mut queue: Vec<NodeId> = (0..n as NodeId)
            .filter(|&i| indeg[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &o in &fanouts[id as usize] {
                indeg[o as usize] -= 1;
                if indeg[o as usize] == 0 {
                    queue.push(o);
                }
            }
        }
        assert_eq!(order.len(), n, "BOG contains a combinational cycle");
        order
    }

    /// Longest-path logic level of every node (sources = 0, each
    /// combinational operator adds 1).
    pub fn levels(&self) -> Vec<u32> {
        let order = self.topo_order();
        let mut level = vec![0u32; self.nodes.len()];
        for &id in &order {
            let node = &self.nodes[id as usize];
            if node.op.is_comb() {
                let m = self
                    .fanins(id)
                    .iter()
                    .map(|&f| level[f as usize])
                    .max()
                    .unwrap_or(0);
                level[id as usize] = m + 1;
            }
        }
        level
    }

    /// Writes longest-path logic levels into `out` (cleared and refilled, so
    /// one buffer serves many graphs). Uses a single id-order pass when the
    /// graph lists every fanin before its reader — true for all
    /// builder-produced graphs, including canonically extracted cones — and
    /// falls back to [`Bog::levels`] otherwise. Results are identical.
    pub fn levels_into(&self, out: &mut Vec<u32>) {
        let n = self.nodes.len();
        out.clear();
        out.reserve(n);
        for id in 0..n as NodeId {
            let node = &self.nodes[id as usize];
            let mut lvl = 0u32;
            if node.op.is_comb() {
                for &f in self.fanins(id) {
                    if f >= id {
                        *out = self.levels();
                        return;
                    }
                    lvl = lvl.max(out[f as usize] + 1);
                }
            }
            out.push(lvl);
        }
    }

    /// Fanout counts per node.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for id in 0..self.nodes.len() as NodeId {
            for &f in self.fanins(id) {
                counts[f as usize] += 1;
            }
        }
        for r in &self.regs {
            counts[r.d as usize] += 1;
        }
        for (_, o) in &self.outputs {
            counts[*o as usize] += 1;
        }
        counts
    }

    /// Converts to another representation variant (see
    /// [`crate::variants`] rewriting rules).
    pub fn to_variant(&self, variant: BogVariant) -> Bog {
        crate::variants::convert(self, variant)
    }
}

/// Strashing graph builder with local constant folding.
///
/// Structural hashing deduplicates identical operator applications and
/// simple folds (`a & 1 = a`, `x ^ x = 0`, double negation, mux with
/// constant select, …) are applied on the fly, mirroring what real RTL
/// frontends do while building netlist-like graphs.
#[derive(Debug)]
pub struct BogBuilder {
    name: String,
    variant: BogVariant,
    nodes: Vec<BogNode>,
    strash: HashMap<(BogOp, NodeId, NodeId, NodeId), NodeId>,
    inputs: Vec<(String, NodeId)>,
    outputs: Vec<(String, NodeId)>,
    regs: Vec<BogReg>,
    signals: Vec<SignalInfo>,
    const0: Option<NodeId>,
    const1: Option<NodeId>,
}

impl BogBuilder {
    /// Creates an empty builder for a design.
    pub fn new(name: impl Into<String>, variant: BogVariant) -> Self {
        BogBuilder {
            name: name.into(),
            variant,
            nodes: Vec::new(),
            strash: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            regs: Vec::new(),
            signals: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    fn raw(&mut self, op: BogOp, fanins: [NodeId; 3]) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(BogNode { op, fanins });
        id
    }

    fn hashed(&mut self, op: BogOp, fanins: [NodeId; 3]) -> NodeId {
        let key = (op, fanins[0], fanins[1], fanins[2]);
        if let Some(&id) = self.strash.get(&key) {
            return id;
        }
        let id = self.raw(op, fanins);
        self.strash.insert(key, id);
        id
    }

    fn op_of(&self, id: NodeId) -> BogOp {
        self.nodes[id as usize].op
    }

    fn is_not_of(&self, maybe_not: NodeId, a: NodeId) -> bool {
        let n = self.nodes[maybe_not as usize];
        n.op == BogOp::Not && n.fanins[0] == a
    }

    /// Constant 0 node (shared).
    pub fn const0(&mut self) -> NodeId {
        match self.const0 {
            Some(id) => id,
            None => {
                let id = self.raw(BogOp::Const0, [NO_NODE; 3]);
                self.const0 = Some(id);
                id
            }
        }
    }

    /// Constant 1 node (shared).
    pub fn const1(&mut self) -> NodeId {
        match self.const1 {
            Some(id) => id,
            None => {
                let id = self.raw(BogOp::Const1, [NO_NODE; 3]);
                self.const1 = Some(id);
                id
            }
        }
    }

    /// Constant of a boolean value.
    pub fn constant(&mut self, v: bool) -> NodeId {
        if v {
            self.const1()
        } else {
            self.const0()
        }
    }

    /// New primary input bit.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.raw(BogOp::Input, [NO_NODE; 3]);
        self.inputs.push((name.into(), id));
        id
    }

    /// Inverter with folds.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        match self.op_of(a) {
            BogOp::Const0 => self.const1(),
            BogOp::Const1 => self.const0(),
            BogOp::Not => self.nodes[a as usize].fanins[0],
            _ => self.hashed(BogOp::Not, [a, NO_NODE, NO_NODE]),
        }
    }

    /// 2-input AND with folds.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = (a.min(b), a.max(b));
        if a == b {
            return a;
        }
        match (self.op_of(a), self.op_of(b)) {
            (BogOp::Const0, _) | (_, BogOp::Const0) => return self.const0(),
            (BogOp::Const1, _) => return b,
            (_, BogOp::Const1) => return a,
            _ => {}
        }
        if self.is_not_of(a, b) || self.is_not_of(b, a) {
            return self.const0();
        }
        self.hashed(BogOp::And2, [a, b, NO_NODE])
    }

    /// 2-input OR with folds.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if !self.variant.allows(BogOp::Or2) {
            // Decompose per variant.
            return match self.variant {
                BogVariant::Aig => {
                    let na = self.not(a);
                    let nb = self.not(b);
                    let n = self.and2(na, nb);
                    self.not(n)
                }
                BogVariant::Aimg => {
                    let one = self.const1();
                    self.mux2(a, one, b)
                }
                BogVariant::Xag => {
                    let x = self.xor2(a, b);
                    let n = self.and2(a, b);
                    self.xor2(x, n)
                }
                BogVariant::Sog => unreachable!(),
            };
        }
        let (a, b) = (a.min(b), a.max(b));
        if a == b {
            return a;
        }
        match (self.op_of(a), self.op_of(b)) {
            (BogOp::Const1, _) | (_, BogOp::Const1) => return self.const1(),
            (BogOp::Const0, _) => return b,
            (_, BogOp::Const0) => return a,
            _ => {}
        }
        if self.is_not_of(a, b) || self.is_not_of(b, a) {
            return self.const1();
        }
        self.hashed(BogOp::Or2, [a, b, NO_NODE])
    }

    /// 2-input XOR with folds.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if !self.variant.allows(BogOp::Xor2) {
            return match self.variant {
                BogVariant::Aig => {
                    // a^b = !( !(a & !b) & !(!a & b) )
                    let nb = self.not(b);
                    let t1 = self.and2(a, nb);
                    let na = self.not(a);
                    let t2 = self.and2(na, b);
                    let n1 = self.not(t1);
                    let n2 = self.not(t2);
                    let n = self.and2(n1, n2);
                    self.not(n)
                }
                BogVariant::Aimg => {
                    let nb = self.not(b);
                    self.mux2(a, nb, b)
                }
                _ => unreachable!(),
            };
        }
        let (a, b) = (a.min(b), a.max(b));
        if a == b {
            return self.const0();
        }
        match (self.op_of(a), self.op_of(b)) {
            (BogOp::Const0, _) => return b,
            (_, BogOp::Const0) => return a,
            (BogOp::Const1, _) => return self.not(b),
            (_, BogOp::Const1) => return self.not(a),
            _ => {}
        }
        if self.is_not_of(a, b) || self.is_not_of(b, a) {
            return self.const1();
        }
        self.hashed(BogOp::Xor2, [a, b, NO_NODE])
    }

    /// 2-input XNOR helper.
    pub fn xnor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.xor2(a, b);
        self.not(x)
    }

    /// 2:1 mux `s ? t : f` with folds.
    pub fn mux2(&mut self, s: NodeId, t: NodeId, f: NodeId) -> NodeId {
        if !self.variant.allows(BogOp::Mux2) {
            return match self.variant {
                BogVariant::Aig => {
                    let a1 = self.and2(s, t);
                    let ns = self.not(s);
                    let a2 = self.and2(ns, f);
                    let n1 = self.not(a1);
                    let n2 = self.not(a2);
                    let n = self.and2(n1, n2);
                    self.not(n)
                }
                BogVariant::Xag => {
                    // s?t:f = f ^ (s & (t ^ f))
                    let x = self.xor2(t, f);
                    let g = self.and2(s, x);
                    self.xor2(f, g)
                }
                _ => unreachable!(),
            };
        }
        match self.op_of(s) {
            BogOp::Const1 => return t,
            BogOp::Const0 => return f,
            _ => {}
        }
        if t == f {
            return t;
        }
        if self.op_of(t) == BogOp::Const1 && self.op_of(f) == BogOp::Const0 {
            return s;
        }
        if self.op_of(t) == BogOp::Const0 && self.op_of(f) == BogOp::Const1 {
            return self.not(s);
        }
        self.hashed(BogOp::Mux2, [s, t, f])
    }

    /// Declares an RTL sequential signal of `width` bits, creating one DFF
    /// per bit. Returns the Q node ids (LSB first). D pins are connected
    /// later via [`Self::set_reg_d`].
    pub fn signal(
        &mut self,
        name: impl Into<String>,
        width: u32,
        decl_line: u32,
        top_level: bool,
    ) -> Vec<NodeId> {
        let name = name.into();
        let sig_idx = self.signals.len() as u32;
        let mut qs = Vec::with_capacity(width as usize);
        let mut reg_indices = Vec::with_capacity(width as usize);
        for bit in 0..width {
            let q = self.raw(BogOp::Dff, [NO_NODE; 3]);
            reg_indices.push(self.regs.len() as u32);
            self.regs.push(BogReg {
                q,
                d: NO_NODE,
                signal: sig_idx,
                bit,
            });
            qs.push(q);
        }
        self.signals.push(SignalInfo {
            name,
            width,
            regs: reg_indices,
            decl_line,
            top_level,
        });
        qs
    }

    /// Connects the D pin of register `reg_index`.
    pub fn set_reg_d(&mut self, reg_index: usize, d: NodeId) {
        self.regs[reg_index].d = d;
    }

    /// Declares a primary output bit.
    pub fn output(&mut self, name: impl Into<String>, driver: NodeId) {
        self.outputs.push((name.into(), driver));
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if any register D pin was left unconnected.
    pub fn finish(self) -> Bog {
        for (i, r) in self.regs.iter().enumerate() {
            assert!(r.d != NO_NODE, "register {i} has unconnected D pin");
        }
        Bog {
            name: self.name,
            variant: self.variant,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            regs: self.regs,
            signals: self.signals,
        }
    }

    /// Current number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes exist yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_into_matches_levels() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.xor2(g1, x);
        let g3 = b.mux2(y, g2, g1);
        let _q = b.signal("q", 1, 0, true);
        b.set_reg_d(0, g3);
        let bog = b.finish();
        let mut scratch = Vec::new();
        bog.levels_into(&mut scratch);
        assert_eq!(scratch, bog.levels());
        // Reuse on a second graph must fully overwrite the buffer.
        let mut b2 = BogBuilder::new("t2", BogVariant::Sog);
        let a = b2.input("a");
        let _q2 = b2.signal("q", 1, 0, true);
        b2.set_reg_d(0, a);
        let small = b2.finish();
        small.levels_into(&mut scratch);
        assert_eq!(scratch, small.levels());
    }

    #[test]
    fn strash_dedupes_identical_gates() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.and2(y, x); // commutative canonical order
        assert_eq!(g1, g2);
    }

    #[test]
    fn constant_folds() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        let x = b.input("x");
        let c1 = b.const1();
        let c0 = b.const0();
        assert_eq!(b.and2(x, c1), x);
        assert_eq!(b.and2(x, c0), c0);
        assert_eq!(b.or2(x, c0), x);
        assert_eq!(b.xor2(x, x), c0);
        let nx = b.not(x);
        assert_eq!(b.not(nx), x);
        assert_eq!(b.and2(x, nx), c0);
        assert_eq!(b.or2(x, nx), b.const1());
    }

    #[test]
    fn mux_folds() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        let s = b.input("s");
        let t = b.input("t");
        let f = b.input("f");
        let c1 = b.const1();
        let c0 = b.const0();
        assert_eq!(b.mux2(c1, t, f), t);
        assert_eq!(b.mux2(c0, t, f), f);
        assert_eq!(b.mux2(s, t, t), t);
        assert_eq!(b.mux2(s, c1, c0), s);
    }

    #[test]
    fn variant_gated_construction_avoids_banned_ops() {
        for v in [BogVariant::Aig, BogVariant::Aimg, BogVariant::Xag] {
            let mut b = BogBuilder::new("t", v);
            let x = b.input("x");
            let y = b.input("y");
            let s = b.input("s");
            let o = b.or2(x, y);
            let xo = b.xor2(x, y);
            let m = b.mux2(s, x, y);
            b.output("o", o);
            b.output("x", xo);
            b.output("m", m);
            let g = b.finish();
            for n in g.nodes() {
                assert!(v.allows(n.op), "{v} contains {}", n.op);
            }
        }
    }

    #[test]
    fn signal_creates_bit_endpoints() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        let d = b.input("d");
        let qs = b.signal("r", 3, 10, true);
        for (i, _) in qs.iter().enumerate() {
            b.set_reg_d(i, d);
        }
        let g = b.finish();
        assert_eq!(g.regs().len(), 3);
        assert_eq!(g.signals()[0].name, "r");
        assert_eq!(g.endpoint_name(Endpoint::Reg(2)), "r[2]");
    }

    #[test]
    #[should_panic(expected = "unconnected D pin")]
    fn unconnected_d_pin_panics() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        b.signal("r", 1, 1, true);
        let _ = b.finish();
    }

    #[test]
    fn topo_order_parents_after_children() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and2(x, y);
        let o = b.or2(a, x);
        b.output("o", o);
        let g = b.finish();
        let order = g.topo_order();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for id in 0..g.len() as NodeId {
            for &f in g.fanins(id) {
                assert!(pos[&f] < pos[&id]);
            }
        }
    }

    #[test]
    fn levels_count_operator_depth() {
        let mut b = BogBuilder::new("t", BogVariant::Sog);
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and2(x, y);
        let c = b.xor2(a, y);
        b.output("c", c);
        let g = b.finish();
        let lv = g.levels();
        assert_eq!(lv[x as usize], 0);
        assert_eq!(lv[a as usize], 1);
        assert_eq!(lv[c as usize], 2);
    }
}
