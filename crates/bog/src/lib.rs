//! Bit-level **Boolean Operator Graph** (BOG) — the paper's universal
//! ML-friendly RTL representation (§3.1).
//!
//! A BOG is a bit-blasted view of the RTL where every node is a simple
//! Boolean operator and every RTL sequential signal bit becomes a D
//! flip-flop node. Because registers are preserved one-to-one between RTL
//! and netlist, each register bit is a *timing endpoint* that can be labeled
//! with post-synthesis slack — the key trick that makes fine-grained RTL
//! timing learning possible.
//!
//! The universal graph specializes into the paper's four variants by
//! restricting the operator alphabet ([`BogVariant`]):
//!
//! | variant | operators |
//! |---------|-----------------------------|
//! | SOG     | NOT AND OR XOR MUX          |
//! | AIG     | NOT AND                     |
//! | AIMG    | NOT AND MUX                 |
//! | XAG     | NOT AND XOR                 |
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), rtlt_verilog::VerilogError> {
//! let netlist = rtlt_verilog::compile(
//!     "module m(input clk, input [3:0] a, input [3:0] b, output [3:0] q);
//!        reg [3:0] acc;
//!        always @(posedge clk) acc <= acc + (a ^ b);
//!        assign q = acc;
//!      endmodule",
//!     "m",
//! )?;
//! let sog = rtlt_bog::blast(&netlist);
//! assert_eq!(sog.regs().len(), 4); // 4 bit-wise endpoints
//! let aig = sog.to_variant(rtlt_bog::BogVariant::Aig);
//! assert!(aig.stats().xor2 == 0 && aig.stats().or2 == 0 && aig.stats().mux2 == 0);
//! # Ok(())
//! # }
//! ```

mod blast;
mod codec;
mod cone;
mod graph;
mod provenance;
mod sim;
mod stats;
mod variants;

pub use blast::blast;
pub use cone::{
    cone_fingerprint, extract_signal_cone, input_cone, input_cone_scratch, ConeInfo, ConeScratch,
};
pub use graph::{
    Bog, BogBuilder, BogOp, BogReg, BogVariant, Endpoint, NodeId, SignalInfo, NO_NODE,
};
pub use provenance::signal_provenance;
pub use sim::BitSim;
pub use stats::BogStats;
