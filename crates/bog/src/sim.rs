//! 64-pattern parallel bit-level simulator.
//!
//! Each node value is a `u64` holding 64 independent simulation patterns,
//! so one pass evaluates 64 random stimuli at once — used heavily by the
//! functional-equivalence property tests between the word-level netlist and
//! the four BOG variants.

use crate::graph::{Bog, BogOp, NodeId};
use std::collections::HashMap;

/// Bit-parallel simulator over a [`Bog`].
#[derive(Debug)]
pub struct BitSim<'a> {
    bog: &'a Bog,
    order: Vec<NodeId>,
    values: Vec<u64>,
    reg_state: Vec<u64>,
    /// Input word name → (bit index → node).
    input_words: HashMap<String, Vec<(u32, NodeId)>>,
}

impl<'a> BitSim<'a> {
    /// Builds a simulator; registers start at 0.
    pub fn new(bog: &'a Bog) -> Self {
        let mut input_words: HashMap<String, Vec<(u32, NodeId)>> = HashMap::new();
        for (name, id) in bog.inputs() {
            if let Some((word, bit)) = split_bit_name(name) {
                input_words
                    .entry(word.to_owned())
                    .or_default()
                    .push((bit, *id));
            } else {
                input_words.entry(name.clone()).or_default().push((0, *id));
            }
        }
        BitSim {
            bog,
            order: bog.topo_order(),
            values: vec![0; bog.len()],
            reg_state: vec![0; bog.regs().len()],
            input_words,
        }
    }

    /// Sets all 64 patterns of one bit of an input word.
    pub fn set_input_bit(&mut self, node: NodeId, patterns: u64) {
        self.values[node as usize] = patterns;
    }

    /// Sets an input word so that pattern `p` carries bit `(value[p] >> bit) & 1`.
    ///
    /// `values` holds one word value per pattern (up to 64).
    ///
    /// # Panics
    ///
    /// Panics if `word` is not an input word of the design.
    pub fn set_input_word(&mut self, word: &str, values: &[u64]) {
        let bits = self
            .input_words
            .get(word)
            .unwrap_or_else(|| panic!("no input word '{word}'"))
            .clone();
        for (bit, node) in bits {
            let mut pat = 0u64;
            for (p, &v) in values.iter().enumerate() {
                pat |= ((v >> bit) & 1) << p;
            }
            self.values[node as usize] = pat;
        }
    }

    /// Resets register state to zero.
    pub fn reset(&mut self) {
        self.reg_state.iter_mut().for_each(|v| *v = 0);
    }

    /// Evaluates combinational logic for the current inputs/state.
    pub fn settle(&mut self) {
        for &id in &self.order {
            let node = self.bog.node(id);
            let f = node.fanins;
            let v = match node.op {
                BogOp::Input => continue, // preset by set_input_*
                BogOp::Const0 => 0,
                BogOp::Const1 => u64::MAX,
                BogOp::Dff => {
                    // Find which register this Q belongs to (precomputed
                    // below would be faster; regs are few).
                    continue;
                }
                BogOp::Not => !self.values[f[0] as usize],
                BogOp::And2 => self.values[f[0] as usize] & self.values[f[1] as usize],
                BogOp::Or2 => self.values[f[0] as usize] | self.values[f[1] as usize],
                BogOp::Xor2 => self.values[f[0] as usize] ^ self.values[f[1] as usize],
                BogOp::Mux2 => {
                    let s = self.values[f[0] as usize];
                    (s & self.values[f[1] as usize]) | (!s & self.values[f[2] as usize])
                }
            };
            self.values[id as usize] = v;
        }
    }

    /// Loads register state into Q nodes, settles, clocks D into state, and
    /// settles again (outputs then reflect the post-edge state).
    pub fn step(&mut self) {
        self.load_state();
        self.settle();
        let next: Vec<u64> = self
            .bog
            .regs()
            .iter()
            .map(|r| self.values[r.d as usize])
            .collect();
        self.reg_state = next;
        self.load_state();
        self.settle();
    }

    fn load_state(&mut self) {
        for (r, &s) in self.bog.regs().iter().zip(&self.reg_state) {
            self.values[r.q as usize] = s;
        }
    }

    /// Reads the 64 patterns of an output word (`values[p]` = word at
    /// pattern `p`).
    ///
    /// # Panics
    ///
    /// Panics if the design has no output bits named `word[i]`.
    pub fn output_word(&self, word: &str) -> Vec<u64> {
        let mut out = vec![0u64; 64];
        let mut found = false;
        for (name, id) in self.bog.outputs() {
            if let Some((w, bit)) = split_bit_name(name) {
                if w == word {
                    found = true;
                    let pat = self.values[*id as usize];
                    for (p, o) in out.iter_mut().enumerate() {
                        *o |= ((pat >> p) & 1) << bit;
                    }
                }
            }
        }
        assert!(found, "no output word '{word}'");
        out
    }

    /// Raw 64-pattern value of a node.
    pub fn node_value(&self, id: NodeId) -> u64 {
        self.values[id as usize]
    }
}

/// Splits `"name[3]"` into `("name", 3)`.
fn split_bit_name(s: &str) -> Option<(&str, u32)> {
    let open = s.rfind('[')?;
    if !s.ends_with(']') {
        return None;
    }
    let bit: u32 = s[open + 1..s.len() - 1].parse().ok()?;
    Some((&s[..open], bit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use crate::graph::BogVariant;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rtlt_verilog::compile;

    const SRC: &str = "
        module m(input clk, input [7:0] a, input [7:0] b, input s, output [7:0] q, output flag);
          reg [7:0] acc;
          wire [7:0] v;
          assign v = s ? (a + b) : (a - b);
          always @(posedge clk) acc <= acc ^ v;
          assign q = acc;
          assign flag = acc == 8'hFF;
        endmodule";

    #[test]
    fn bit_sim_matches_word_sim_over_random_runs() {
        let netlist = compile(SRC, "m").unwrap();
        let bog = blast(&netlist);
        let mut rng = StdRng::seed_from_u64(7);

        // Word-level reference: one pattern at a time.
        for _ in 0..4 {
            let mut wsim = netlist.simulator();
            let mut bsim = BitSim::new(&bog);
            for _cycle in 0..8 {
                let a: u64 = rng.gen_range(0..256);
                let b: u64 = rng.gen_range(0..256);
                let s: u64 = rng.gen_range(0..2);
                wsim.set_input("a", a);
                wsim.set_input("b", b);
                wsim.set_input("s", s);
                bsim.set_input_word("a", &[a]);
                bsim.set_input_word("b", &[b]);
                bsim.set_input_word("s", &[s]);
                wsim.step();
                bsim.step();
                assert_eq!(wsim.output("q"), bsim.output_word("q")[0] & 0xFF);
                assert_eq!(wsim.output("flag"), bsim.output_word("flag")[0] & 1);
            }
        }
    }

    #[test]
    fn all_variants_functionally_equivalent() {
        let netlist = compile(SRC, "m").unwrap();
        let sog = blast(&netlist);
        let variants: Vec<_> = BogVariant::ALL.iter().map(|&v| sog.to_variant(v)).collect();
        let mut rng = StdRng::seed_from_u64(13);

        let mut sims: Vec<BitSim> = variants.iter().map(BitSim::new).collect();
        for _cycle in 0..12 {
            let a: Vec<u64> = (0..64).map(|_| rng.gen_range(0..256)).collect();
            let b: Vec<u64> = (0..64).map(|_| rng.gen_range(0..256)).collect();
            let s: Vec<u64> = (0..64).map(|_| rng.gen_range(0..2)).collect();
            for sim in &mut sims {
                sim.set_input_word("a", &a);
                sim.set_input_word("b", &b);
                sim.set_input_word("s", &s);
                sim.step();
            }
            let q0 = sims[0].output_word("q");
            for sim in &sims[1..] {
                assert_eq!(sim.output_word("q"), q0);
            }
        }
    }

    #[test]
    fn split_bit_name_parses() {
        assert_eq!(split_bit_name("acc[12]"), Some(("acc", 12)));
        assert_eq!(split_bit_name("x"), None);
    }
}
