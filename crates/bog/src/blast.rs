//! Bit-blasting: word-level RTL netlist → SOG Boolean operator graph.
//!
//! Arithmetic decomposes into textbook bit-level structures (ripple-carry
//! adders, shift-add multipliers, barrel shifters, ripple comparators,
//! linear reduction chains). These are deliberately *unoptimized* — logic
//! restructuring is the synthesis simulator's job, and the structural gap
//! between this direct translation and the optimized netlist is exactly what
//! the paper's ML model has to learn.

use crate::graph::{BogBuilder, BogVariant, NodeId};
use crate::Bog;
use rtlt_verilog::rtlir::{Netlist, WBinaryOp, WKind, WUnaryOp};

/// Bit-blasts an elaborated netlist into a SOG-variant BOG.
///
/// Registers become per-bit DFF endpoints; primary outputs become PO
/// endpoints. Use [`Bog::to_variant`] for the other three representations.
pub fn blast(netlist: &Netlist) -> Bog {
    let mut b = BogBuilder::new(netlist.name.clone(), BogVariant::Sog);

    // Registers first, so RegQ references resolve.
    let mut reg_bits: Vec<Vec<NodeId>> = Vec::with_capacity(netlist.regs().len());
    for r in netlist.regs() {
        let qs = b.signal(r.name.clone(), r.width, r.decl_line, r.top_level);
        reg_bits.push(qs);
    }

    // Primary inputs (all of them, referenced or not — ports exist).
    let mut bits: Vec<Option<Vec<NodeId>>> = vec![None; netlist.nodes().len()];
    for &iid in netlist.inputs() {
        let name = netlist.input_name(iid);
        let w = netlist.node(iid).width;
        let v: Vec<NodeId> = (0..w).map(|i| b.input(format!("{name}[{i}]"))).collect();
        bits[iid as usize] = Some(v);
    }

    // Combinational nodes in topological order.
    for id in netlist.topo_order() {
        if bits[id as usize].is_some() {
            continue;
        }
        let node = netlist.node(id);
        let w = node.width as usize;
        let v: Vec<NodeId> = match &node.kind {
            WKind::Input { name } => (0..w).map(|i| b.input(format!("{name}[{i}]"))).collect(),
            WKind::Const { value } => (0..w).map(|i| b.constant((value >> i) & 1 == 1)).collect(),
            WKind::RegQ { reg } => reg_bits[*reg as usize].clone(),
            WKind::Net { name } => panic!("unresolved net {name} reached bit-blasting"),
            WKind::Unary { op, a } => {
                let av = bits[*a as usize].as_ref().expect("fanin blasted").clone();
                match op {
                    WUnaryOp::Not => av.iter().map(|&x| b.not(x)).collect(),
                    WUnaryOp::Neg => {
                        // ~a + 1 via ripple carry-in of 1.
                        let mut out = Vec::with_capacity(w);
                        let mut carry = b.const1();
                        for &x in &av {
                            let nx = b.not(x);
                            let s = b.xor2(nx, carry);
                            carry = b.and2(nx, carry);
                            out.push(s);
                        }
                        out
                    }
                    WUnaryOp::RedAnd => vec![chain(&mut b, &av, BogBuilder::and2)],
                    WUnaryOp::RedOr => vec![chain(&mut b, &av, BogBuilder::or2)],
                    WUnaryOp::RedXor => vec![chain(&mut b, &av, BogBuilder::xor2)],
                }
            }
            WKind::Binary { op, a, b: bb } => {
                let av = bits[*a as usize].as_ref().expect("fanin blasted").clone();
                let bv = bits[*bb as usize].as_ref().expect("fanin blasted").clone();
                let b_const = match &netlist.node(*bb).kind {
                    WKind::Const { value } => Some(*value),
                    _ => None,
                };
                blast_binary(&mut b, *op, &av, &bv, w, b_const)
            }
            WKind::Mux { cond, t, f } => {
                let c = bits[*cond as usize].as_ref().expect("fanin blasted")[0];
                let tv = bits[*t as usize].as_ref().expect("fanin blasted").clone();
                let fv = bits[*f as usize].as_ref().expect("fanin blasted").clone();
                (0..w).map(|i| b.mux2(c, tv[i], fv[i])).collect()
            }
            WKind::Concat { parts } => {
                let mut v = Vec::with_capacity(w);
                for p in parts {
                    v.extend(
                        bits[*p as usize]
                            .as_ref()
                            .expect("fanin blasted")
                            .iter()
                            .copied(),
                    );
                }
                v
            }
            WKind::Slice { a, lsb } => {
                let av = bits[*a as usize].as_ref().expect("fanin blasted");
                av[*lsb as usize..*lsb as usize + w].to_vec()
            }
        };
        debug_assert_eq!(v.len(), w);
        bits[id as usize] = Some(v);
    }

    // Connect register D pins.
    for (ri, r) in netlist.regs().iter().enumerate() {
        let next = bits[r.next as usize].as_ref().expect("next blasted");
        for (bit, &d) in next.iter().enumerate() {
            // Builder reg order matches signal order (contiguous).
            let breg = {
                // signal ri, bit `bit`
                let base: u32 = netlist.regs()[..ri].iter().map(|x| x.width).sum();
                (base + bit as u32) as usize
            };
            b.set_reg_d(breg, d);
        }
    }

    // Primary outputs.
    for (name, id) in netlist.outputs() {
        let v = bits[*id as usize].as_ref().expect("output blasted");
        for (i, &bit) in v.iter().enumerate() {
            b.output(format!("{name}[{i}]"), bit);
        }
    }

    b.finish()
}

fn chain(
    b: &mut BogBuilder,
    v: &[NodeId],
    f: fn(&mut BogBuilder, NodeId, NodeId) -> NodeId,
) -> NodeId {
    let mut acc = v[0];
    for &x in &v[1..] {
        acc = f(b, acc, x);
    }
    acc
}

/// Full-adder sum and carry.
fn full_add(b: &mut BogBuilder, x: NodeId, y: NodeId, c: NodeId) -> (NodeId, NodeId) {
    let xy = b.xor2(x, y);
    let s = b.xor2(xy, c);
    let t1 = b.and2(x, y);
    let t2 = b.and2(c, xy);
    let co = b.or2(t1, t2);
    (s, co)
}

fn blast_binary(
    b: &mut BogBuilder,
    op: WBinaryOp,
    av: &[NodeId],
    bv: &[NodeId],
    w: usize,
    b_const: Option<u64>,
) -> Vec<NodeId> {
    match op {
        WBinaryOp::And => (0..w).map(|i| b.and2(av[i], bv[i])).collect(),
        WBinaryOp::Or => (0..w).map(|i| b.or2(av[i], bv[i])).collect(),
        WBinaryOp::Xor => (0..w).map(|i| b.xor2(av[i], bv[i])).collect(),
        WBinaryOp::Add => {
            let mut out = Vec::with_capacity(w);
            let mut carry = b.const0();
            for i in 0..w {
                let (s, co) = full_add(b, av[i], bv[i], carry);
                out.push(s);
                carry = co;
            }
            out
        }
        WBinaryOp::Sub => {
            // a + ~b + 1.
            let mut out = Vec::with_capacity(w);
            let mut carry = b.const1();
            for i in 0..w {
                let nb = b.not(bv[i]);
                let (s, co) = full_add(b, av[i], nb, carry);
                out.push(s);
                carry = co;
            }
            out
        }
        WBinaryOp::Mul => {
            // Shift-add array multiplier over the (already equal) width.
            let zero = b.const0();
            let mut acc: Vec<NodeId> = (0..w).map(|j| b.and2(av[j], bv[0])).collect();
            for i in 1..w {
                let mut carry = zero;
                // Row i: av[j] & bv[i] added into acc starting at bit i.
                for j in 0..(w - i) {
                    let pp = b.and2(av[j], bv[i]);
                    let (s, co) = full_add(b, acc[i + j], pp, carry);
                    acc[i + j] = s;
                    carry = co;
                }
            }
            acc
        }
        WBinaryOp::Shl | WBinaryOp::Shr => {
            let left = op == WBinaryOp::Shl;
            if let Some(k) = b_const {
                let zero = b.const0();
                return shift_const(av, w, k, left, zero);
            }
            // Barrel shifter over the shift-amount bits.
            let zero = b.const0();
            let mut cur: Vec<NodeId> = av.to_vec();
            for (k, &sbit) in bv.iter().enumerate() {
                let amt = 1usize.checked_shl(k as u32).unwrap_or(usize::MAX);
                let shifted: Vec<NodeId> = if amt >= w {
                    vec![zero; w]
                } else if left {
                    let mut v = vec![zero; amt];
                    v.extend_from_slice(&cur[..w - amt]);
                    v
                } else {
                    let mut v = cur[amt..].to_vec();
                    v.extend(std::iter::repeat_n(zero, amt));
                    v
                };
                cur = (0..w).map(|i| b.mux2(sbit, shifted[i], cur[i])).collect();
            }
            cur
        }
        WBinaryOp::Eq => {
            let diffs: Vec<NodeId> = (0..av.len()).map(|i| b.xor2(av[i], bv[i])).collect();
            let any = chain(b, &diffs, BogBuilder::or2);
            vec![b.not(any)]
        }
        WBinaryOp::Lt => {
            // Ripple comparator from the LSB:
            // lt_i = (!a_i & b_i) | (a_i ==  b_i) & lt_{i-1}.
            let mut lt = b.const0();
            for i in 0..av.len() {
                let na = b.not(av[i]);
                let t1 = b.and2(na, bv[i]);
                let eq = b.xnor2(av[i], bv[i]);
                let t2 = b.and2(eq, lt);
                lt = b.or2(t1, t2);
            }
            vec![lt]
        }
    }
}

fn shift_const(av: &[NodeId], w: usize, k: u64, left: bool, zero: NodeId) -> Vec<NodeId> {
    let k = k.min(w as u64) as usize;
    if left {
        let mut v = vec![zero; k];
        v.extend_from_slice(&av[..w - k]);
        v
    } else {
        let mut v = av[k..].to_vec();
        v.extend(std::iter::repeat_n(zero, k));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_verilog::compile;

    fn blast_src(src: &str, top: &str) -> Bog {
        blast(&compile(src, top).unwrap())
    }

    #[test]
    fn counter_has_bit_endpoints() {
        let g = blast_src(
            "module c(input clk, input rst, output [3:0] q);
               reg [3:0] cnt;
               always @(posedge clk) if (rst) cnt <= 4'd0; else cnt <= cnt + 4'd1;
               assign q = cnt;
             endmodule",
            "c",
        );
        assert_eq!(g.regs().len(), 4);
        assert_eq!(g.signals().len(), 1);
        assert_eq!(g.outputs().len(), 4);
        assert!(g.stats().comb_total > 0);
    }

    #[test]
    fn adder_structure_is_ripple() {
        // An N-bit adder's critical level should grow linearly with N
        // (ripple carry), not logarithmically.
        let g8 = blast_src(
            "module a(input [7:0] x, input [7:0] y, output [7:0] s); assign s = x + y; endmodule",
            "a",
        );
        let g16 = blast_src(
            "module a(input [15:0] x, input [15:0] y, output [15:0] s); assign s = x + y; endmodule",
            "a",
        );
        let max8 = *g8.levels().iter().max().unwrap();
        let max16 = *g16.levels().iter().max().unwrap();
        assert!(max16 >= max8 + 6, "ripple growth: {max8} -> {max16}");
    }

    #[test]
    fn blasted_const_shift_adds_no_logic() {
        let g = blast_src(
            "module s(input [7:0] x, output [7:0] y); assign y = x << 3; endmodule",
            "s",
        );
        assert_eq!(g.stats().comb_total, 0, "constant shift is pure rewiring");
    }

    #[test]
    fn self_holding_register_allowed() {
        let g = blast_src(
            "module h(input clk, input en, input d, output q);
               reg r;
               always @(posedge clk) if (en) r <= d;
               assign q = r;
             endmodule",
            "h",
        );
        assert_eq!(g.regs().len(), 1);
    }
}
