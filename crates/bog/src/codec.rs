//! [`Codec`] implementations for BOG types, enabling `rtlt-store`
//! persistence of blasted designs. Lives here (not in the store crate)
//! because [`Bog`]'s fields are crate-private by design — the codec is the
//! one sanctioned way to rebuild a graph from raw parts, and it re-checks
//! nothing: a corrupt stream fails decoding, never constructs a graph.

use crate::cone::ConeInfo;
use crate::graph::{Bog, BogNode, BogOp, BogReg, BogVariant, SignalInfo};
use rtlt_store::{Codec, CodecError, Dec, Enc};

impl Codec for ConeInfo {
    fn encode(&self, e: &mut Enc) {
        e.usize(self.driving_regs);
        e.usize(self.driving_inputs);
        e.usize(self.size);
        e.u32(self.depth);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(ConeInfo {
            driving_regs: d.usize()?,
            driving_inputs: d.usize()?,
            size: d.usize()?,
            depth: d.u32()?,
        })
    }
}

impl Codec for BogOp {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            BogOp::Input => 0u8,
            BogOp::Const0 => 1,
            BogOp::Const1 => 2,
            BogOp::Not => 3,
            BogOp::And2 => 4,
            BogOp::Or2 => 5,
            BogOp::Xor2 => 6,
            BogOp::Mux2 => 7,
            BogOp::Dff => 8,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => BogOp::Input,
            1 => BogOp::Const0,
            2 => BogOp::Const1,
            3 => BogOp::Not,
            4 => BogOp::And2,
            5 => BogOp::Or2,
            6 => BogOp::Xor2,
            7 => BogOp::Mux2,
            8 => BogOp::Dff,
            _ => return Err(CodecError::new("BogOp tag")),
        })
    }
}

impl Codec for BogVariant {
    fn encode(&self, e: &mut Enc) {
        let tag = match self {
            BogVariant::Sog => 0u8,
            BogVariant::Aig => 1,
            BogVariant::Aimg => 2,
            BogVariant::Xag => 3,
        };
        e.u8(tag);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => BogVariant::Sog,
            1 => BogVariant::Aig,
            2 => BogVariant::Aimg,
            3 => BogVariant::Xag,
            _ => return Err(CodecError::new("BogVariant tag")),
        })
    }
}

impl Codec for BogNode {
    fn encode(&self, e: &mut Enc) {
        self.op.encode(e);
        for f in self.fanins {
            e.u32(f);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let op = BogOp::decode(d)?;
        let fanins = [d.u32()?, d.u32()?, d.u32()?];
        Ok(BogNode { op, fanins })
    }
}

impl Codec for BogReg {
    fn encode(&self, e: &mut Enc) {
        e.u32(self.q);
        e.u32(self.d);
        e.u32(self.signal);
        e.u32(self.bit);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(BogReg {
            q: d.u32()?,
            d: d.u32()?,
            signal: d.u32()?,
            bit: d.u32()?,
        })
    }
}

impl Codec for SignalInfo {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.u32(self.width);
        self.regs.encode(e);
        e.u32(self.decl_line);
        e.bool(self.top_level);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SignalInfo {
            name: d.str()?,
            width: d.u32()?,
            regs: Vec::decode(d)?,
            decl_line: d.u32()?,
            top_level: d.bool()?,
        })
    }
}

impl Codec for Bog {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        self.variant.encode(e);
        self.nodes.encode(e);
        self.inputs.encode(e);
        self.outputs.encode(e);
        self.regs.encode(e);
        self.signals.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Bog {
            name: d.str()?,
            variant: BogVariant::decode(d)?,
            nodes: Vec::decode(d)?,
            inputs: Vec::decode(d)?,
            outputs: Vec::decode(d)?,
            regs: Vec::decode(d)?,
            signals: Vec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bog() -> Bog {
        let netlist = rtlt_verilog::compile(
            "module m(input clk, input [3:0] a, input [3:0] b, output [3:0] q);
               reg [3:0] acc;
               always @(posedge clk) acc <= acc + (a ^ b);
               assign q = acc;
             endmodule",
            "m",
        )
        .expect("compiles");
        crate::blast(&netlist)
    }

    #[test]
    fn bog_round_trips() {
        let sog = sample_bog();
        let back = Bog::from_bytes(&sog.to_bytes()).expect("round trip");
        assert_eq!(back.name, sog.name);
        assert_eq!(back.variant, sog.variant);
        assert_eq!(back.nodes(), sog.nodes());
        assert_eq!(back.inputs(), sog.inputs());
        assert_eq!(back.outputs(), sog.outputs());
        assert_eq!(back.regs(), sog.regs());
        assert_eq!(back.signals(), sog.signals());
        // Derived structure survives too.
        assert_eq!(back.levels(), sog.levels());
    }

    #[test]
    fn variant_round_trips() {
        let aig = sample_bog().to_variant(BogVariant::Aig);
        let back = Bog::from_bytes(&aig.to_bytes()).expect("round trip");
        assert_eq!(back.variant, BogVariant::Aig);
        assert_eq!(back.nodes(), aig.nodes());
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = sample_bog().to_bytes();
        assert!(Bog::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }
}
