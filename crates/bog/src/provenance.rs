//! Cone → module provenance.
//!
//! For every RTL sequential signal, computes the set of source modules its
//! input cone was elaborated from. This is the invalidation map of the
//! incremental pipeline: editing a module can only change the cones whose
//! module set contains it, so everything else is reusable by key.
//!
//! The set is the union, over every word-level node in the signal's
//! next-state cone (boundary registers and inputs included), of the node's
//! scope *ancestor chain*. Descendant modules are covered transitively by
//! the dependency-closed module keys (`rtlt_verilog::modsrc`); ancestors
//! must be explicit because parameters flow downward through instantiation.

use rtlt_verilog::rtlir::Netlist;
use std::collections::BTreeSet;

/// Module-name sets feeding each signal's input cone, aligned with the
/// netlist's register order (which is also [`crate::blast`]'s signal
/// order). Each set is sorted and deduplicated.
pub fn signal_provenance(netlist: &Netlist) -> Vec<Vec<String>> {
    let n = netlist.nodes().len();
    // Scope → ancestor-chain module names, computed once.
    let chains: Vec<Vec<&str>> = (0..netlist.scopes().len() as u32)
        .map(|s| netlist.scope_module_chain(s))
        .collect();

    netlist
        .regs()
        .iter()
        .map(|r| {
            let mut modules: BTreeSet<&str> = BTreeSet::new();
            let mut seen = vec![false; n];
            let mut stack = vec![r.next, r.q];
            while let Some(id) = stack.pop() {
                if seen[id as usize] {
                    continue;
                }
                seen[id as usize] = true;
                modules.extend(chains[netlist.node_scope(id) as usize].iter().copied());
                // Boundary registers and inputs have no fanins, so the walk
                // stops at them after recording their scope (a boundary
                // register's own module matters — the register could
                // disappear — but its D cone is a different cone).
                for f in netlist.fanins(id) {
                    if !seen[f as usize] {
                        stack.push(f);
                    }
                }
            }
            modules.into_iter().map(str::to_owned).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlt_verilog::compile;

    const SRC: &str = "module laneA(input clk, input [3:0] a, output [3:0] y);
               reg [3:0] ra;
               always @(posedge clk) ra <= a + 4'd1;
               assign y = ra;
             endmodule
             module laneB(input clk, input [3:0] b, output [3:0] y);
               reg [3:0] rb;
               always @(posedge clk) rb <= b ^ 4'd5;
               assign y = rb;
             endmodule
             module top(input clk, input [3:0] a, input [3:0] b, output [3:0] q);
               wire [3:0] ya;
               wire [3:0] yb;
               laneA u0 (.clk(clk), .a(a), .y(ya));
               laneB u1 (.clk(clk), .b(b), .y(yb));
               reg [3:0] merge;
               always @(posedge clk) merge <= ya & yb;
               assign q = merge;
             endmodule";

    #[test]
    fn disjoint_lanes_have_disjoint_module_sets() {
        let netlist = compile(SRC, "top").unwrap();
        let prov = signal_provenance(&netlist);
        assert_eq!(prov.len(), netlist.regs().len());
        let of = |name: &str| {
            let i = netlist.regs().iter().position(|r| r.name == name).unwrap();
            prov[i].clone()
        };
        // Lane registers: their own module plus the top (ancestor chain —
        // the instantiation site and parameters live there).
        assert_eq!(of("u0.ra"), vec!["laneA".to_owned(), "top".to_owned()]);
        assert_eq!(of("u1.rb"), vec!["laneB".to_owned(), "top".to_owned()]);
        // The merge register reads both lanes' outputs.
        assert_eq!(
            of("merge"),
            vec!["laneA".to_owned(), "laneB".to_owned(), "top".to_owned()]
        );
    }

    #[test]
    fn flat_design_provenance_is_the_top_module() {
        let netlist = compile(
            "module m(input clk, input d, output q);
               reg r;
               always @(posedge clk) r <= d;
               assign q = r;
             endmodule",
            "m",
        )
        .unwrap();
        let prov = signal_provenance(&netlist);
        assert_eq!(prov, vec![vec!["m".to_owned()]]);
    }
}
