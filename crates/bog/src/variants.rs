//! Variant conversion: SOG → AIG / AIMG / XAG.
//!
//! Conversion rebuilds the graph through a variant-gated [`BogBuilder`]: the
//! builder's `or2`/`xor2`/`mux2` constructors decompose banned operators
//! into the target alphabet (with strashing, so shared structure stays
//! shared). All four variants are functionally equivalent by construction —
//! an invariant the test-suite checks by 64-pattern random co-simulation.

use crate::graph::{Bog, BogBuilder, BogOp, BogVariant, NodeId};

/// Converts `bog` into `variant`, preserving endpoint/signal/output
/// identity and order.
pub fn convert(bog: &Bog, variant: BogVariant) -> Bog {
    if variant == bog.variant {
        return bog.clone();
    }
    let mut b = BogBuilder::new(bog.name.clone(), variant);

    // Recreate signals first so register indices line up.
    let mut qs_by_signal: Vec<Vec<NodeId>> = Vec::with_capacity(bog.signals().len());
    for s in bog.signals() {
        qs_by_signal.push(b.signal(s.name.clone(), s.width, s.decl_line, s.top_level));
    }

    let mut map: Vec<NodeId> = vec![crate::graph::NO_NODE; bog.len()];
    // Pre-map DFF Q nodes.
    for r in bog.regs() {
        map[r.q as usize] = qs_by_signal[r.signal as usize][r.bit as usize];
    }

    for id in bog.topo_order() {
        if map[id as usize] != crate::graph::NO_NODE {
            continue;
        }
        let node = bog.node(id);
        let f = node.fanins;
        let m = |x: NodeId| map[x as usize];
        let new_id = match node.op {
            BogOp::Input => {
                let name = bog
                    .inputs()
                    .iter()
                    .find(|(_, n)| *n == id)
                    .map(|(s, _)| s.clone())
                    .unwrap_or_else(|| format!("in{id}"));
                b.input(name)
            }
            BogOp::Const0 => b.const0(),
            BogOp::Const1 => b.const1(),
            BogOp::Not => b.not(m(f[0])),
            BogOp::And2 => b.and2(m(f[0]), m(f[1])),
            BogOp::Or2 => b.or2(m(f[0]), m(f[1])),
            BogOp::Xor2 => b.xor2(m(f[0]), m(f[1])),
            BogOp::Mux2 => b.mux2(m(f[0]), m(f[1]), m(f[2])),
            BogOp::Dff => unreachable!("DFFs pre-mapped"),
        };
        map[id as usize] = new_id;
    }

    for (i, r) in bog.regs().iter().enumerate() {
        b.set_reg_d(i, map[r.d as usize]);
    }
    for (name, drv) in bog.outputs() {
        b.output(name.clone(), map[*drv as usize]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use rtlt_verilog::compile;

    fn sample() -> Bog {
        blast(
            &compile(
                "module m(input clk, input [7:0] a, input [7:0] b, input s, output [7:0] q);
                   reg [7:0] acc;
                   wire [7:0] v;
                   assign v = s ? (a ^ b) : (a | b);
                   always @(posedge clk) acc <= acc + v;
                   assign q = acc;
                 endmodule",
                "m",
            )
            .unwrap(),
        )
    }

    #[test]
    fn variants_respect_alphabet() {
        let sog = sample();
        for v in BogVariant::ALL {
            let g = sog.to_variant(v);
            for n in g.nodes() {
                assert!(v.allows(n.op), "{v} has a {} node", n.op);
            }
            assert_eq!(g.regs().len(), sog.regs().len());
            assert_eq!(g.outputs().len(), sog.outputs().len());
            assert_eq!(g.signals().len(), sog.signals().len());
        }
    }

    #[test]
    fn aig_is_larger_than_sog() {
        let sog = sample();
        let aig = sog.to_variant(BogVariant::Aig);
        assert!(
            aig.stats().comb_total > sog.stats().comb_total,
            "AND/NOT decomposition expands node count"
        );
    }

    #[test]
    fn conversion_to_same_variant_is_identity_clone() {
        let sog = sample();
        let again = sog.to_variant(BogVariant::Sog);
        assert_eq!(again.len(), sog.len());
    }
}
