//! Graph statistics — the design-level features of Table 2 (sequential /
//! combinational / total cell counts) plus per-operator breakdowns.

use crate::graph::{Bog, BogOp};

/// Size statistics of a BOG, treating each node as a pseudo cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BogStats {
    /// Inverter count.
    pub not: usize,
    /// AND2 count.
    pub and2: usize,
    /// OR2 count.
    pub or2: usize,
    /// XOR2 count.
    pub xor2: usize,
    /// MUX2 count.
    pub mux2: usize,
    /// DFF count (sequential cells = bit endpoints).
    pub dff: usize,
    /// Primary input bits.
    pub inputs: usize,
    /// Constant nodes.
    pub consts: usize,
    /// Total combinational operators.
    pub comb_total: usize,
    /// Total cells (combinational + sequential).
    pub total_cells: usize,
    /// Maximum logic level.
    pub max_level: u32,
    /// Endpoint count (register bits + primary output bits).
    pub endpoints: usize,
}

impl Bog {
    /// Computes node-count statistics.
    pub fn stats(&self) -> BogStats {
        let mut s = BogStats::default();
        for n in self.nodes() {
            match n.op {
                BogOp::Not => s.not += 1,
                BogOp::And2 => s.and2 += 1,
                BogOp::Or2 => s.or2 += 1,
                BogOp::Xor2 => s.xor2 += 1,
                BogOp::Mux2 => s.mux2 += 1,
                BogOp::Dff => s.dff += 1,
                BogOp::Input => s.inputs += 1,
                BogOp::Const0 | BogOp::Const1 => s.consts += 1,
            }
        }
        s.comb_total = s.not + s.and2 + s.or2 + s.xor2 + s.mux2;
        s.total_cells = s.comb_total + s.dff;
        s.max_level = self.levels().into_iter().max().unwrap_or(0);
        s.endpoints = self.regs().len() + self.outputs().len();
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::blast::blast;
    use rtlt_verilog::compile;

    #[test]
    fn stats_are_consistent() {
        let bog = blast(
            &compile(
                "module m(input clk, input [3:0] a, input [3:0] b, output [3:0] q);
                   reg [3:0] r;
                   always @(posedge clk) r <= (a & b) | (a ^ b);
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let s = bog.stats();
        assert_eq!(s.dff, 4);
        assert_eq!(s.endpoints, 4 + 4);
        assert_eq!(s.comb_total, s.not + s.and2 + s.or2 + s.xor2 + s.mux2);
        assert_eq!(s.total_cells, s.comb_total + s.dff);
        assert!(s.max_level >= 2);
    }
}
