//! Endpoint input cones.
//!
//! The register-oriented processing of the paper (§3.2) backtracks from each
//! endpoint to all driving registers — the endpoint's *input cone* `C`. The
//! cone's driving-register count sizes the random path sample `K_i` and is
//! itself a model feature (Table 2).
//!
//! [`extract_signal_cone`] additionally materializes a signal's combined
//! input cone as a standalone, canonically-numbered sub-graph — the unit of
//! the sharded featurize cache: two designs (or two edits of one design)
//! whose cone-feeding modules are unchanged extract byte-identical
//! sub-graphs, regardless of how node ids shifted in the full design.

use crate::graph::{Bog, BogBuilder, BogOp, NodeId};
use rtlt_store::{Codec, ContentHash, Enc};
use std::collections::HashMap;

/// Summary of an endpoint's combinational input cone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConeInfo {
    /// Distinct register Q pins driving the endpoint.
    pub driving_regs: usize,
    /// Distinct primary-input bits driving the endpoint.
    pub driving_inputs: usize,
    /// Combinational operator count inside the cone.
    pub size: usize,
    /// Logic depth (operator count on the longest path) of the cone.
    pub depth: u32,
}

/// Computes the input cone of the node `endpoint` (usually a register D pin
/// or output driver) by backward traversal.
pub fn input_cone(bog: &Bog, endpoint: NodeId) -> ConeInfo {
    let mut scratch = ConeScratch::new();
    scratch.begin(bog);
    input_cone_scratch(bog, endpoint, &mut scratch)
}

/// Reusable tables for repeated [`input_cone_scratch`] queries against one
/// graph: a stamped visited set (O(touched) reset between endpoints) and
/// the longest-path memo, which is endpoint-independent and therefore
/// shared by every endpoint of the graph.
#[derive(Debug, Default)]
pub struct ConeScratch {
    seen: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
    depth_memo: Vec<Option<u32>>,
}

impl ConeScratch {
    /// A fresh, unbound scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebinds the scratch to `bog`. Must be called before the first
    /// [`input_cone_scratch`] query against a graph and again whenever the
    /// graph changes — the depth memo is only valid for one graph.
    pub fn begin(&mut self, bog: &Bog) {
        self.seen.clear();
        self.seen.resize(bog.len(), 0);
        self.epoch = 0;
        self.stack.clear();
        self.depth_memo.clear();
        self.depth_memo.resize(bog.len(), None);
    }
}

/// [`input_cone`] against caller-owned scratch tables — identical result,
/// no per-query allocation. The scratch must have been [`ConeScratch::begin`]-bound
/// to `bog`.
pub fn input_cone_scratch(bog: &Bog, endpoint: NodeId, s: &mut ConeScratch) -> ConeInfo {
    debug_assert_eq!(s.seen.len(), bog.len(), "scratch bound to another graph");
    let mut info = ConeInfo::default();
    s.epoch += 1;
    let epoch = s.epoch;
    s.stack.clear();
    s.stack.push(endpoint);
    while let Some(id) = s.stack.pop() {
        if s.seen[id as usize] == epoch {
            continue;
        }
        s.seen[id as usize] = epoch;
        let node = bog.node(id);
        match node.op {
            BogOp::Dff => info.driving_regs += 1,
            BogOp::Input => info.driving_inputs += 1,
            BogOp::Const0 | BogOp::Const1 => {}
            _ => {
                info.size += 1;
                for &f in bog.fanins(id) {
                    if s.seen[f as usize] != epoch {
                        s.stack.push(f);
                    }
                }
            }
        }
    }
    info.depth = cone_depth(bog, endpoint, &mut s.depth_memo);
    info
}

/// **Structural** fingerprint of a canonically-extracted cone: the hash of
/// its graph structure — operators, fanins, register wiring, port node ids,
/// signal widths — with every name string (design, signal, input, output)
/// and declaration line excluded.
///
/// [`extract_signal_cone`]'s fixed traversal makes the rebuilt node/reg
/// arrays a pure function of structure, so two signals with isomorphic
/// cones (bit lanes of one word, replicated generated blocks) collide here
/// even though their full codec bytes differ in the name strings. Timing
/// evaluation never reads a name, which is what makes the fingerprint a
/// sound sharing key for seed-independent cone evaluations; anything
/// name-dependent (the per-seed shard cache, provenance) must keep using
/// the full content hash of [`Codec::to_bytes`].
pub fn cone_fingerprint(cone: &Bog) -> ContentHash {
    let mut e = Enc::new();
    cone.variant.encode(&mut e);
    e.seq_len(cone.nodes.len());
    for n in &cone.nodes {
        n.encode(&mut e);
    }
    e.seq_len(cone.inputs.len());
    for (_, id) in &cone.inputs {
        e.u32(*id);
    }
    e.seq_len(cone.outputs.len());
    for (_, id) in &cone.outputs {
        e.u32(*id);
    }
    e.seq_len(cone.regs.len());
    for r in &cone.regs {
        r.encode(&mut e);
    }
    e.seq_len(cone.signals.len());
    for s in &cone.signals {
        e.u32(s.width);
        s.regs.encode(&mut e);
    }
    ContentHash::of_bytes(&e.into_bytes())
}

fn cone_depth(bog: &Bog, id: NodeId, memo: &mut [Option<u32>]) -> u32 {
    // Iterative post-order longest path to a source.
    let mut stack = vec![(id, false)];
    while let Some((n, expanded)) = stack.pop() {
        if memo[n as usize].is_some() {
            continue;
        }
        let node = bog.node(n);
        if !node.op.is_comb() {
            memo[n as usize] = Some(0);
            continue;
        }
        if expanded {
            let m = bog
                .fanins(n)
                .iter()
                .map(|&f| memo[f as usize].expect("child computed"))
                .max()
                .unwrap_or(0);
            memo[n as usize] = Some(m + 1);
        } else {
            stack.push((n, true));
            for &f in bog.fanins(n) {
                if memo[f as usize].is_none() {
                    stack.push((f, false));
                }
            }
        }
    }
    memo[id as usize].expect("computed")
}

/// Extracts the combined input cone of one RTL signal (all its bit
/// endpoints) as a standalone [`Bog`] in **canonical numbering**.
///
/// The sub-graph is rebuilt through a fresh [`BogBuilder`] in a fixed
/// traversal order (bit 0's D cone first, fanins in slot order), so its
/// encoded bytes are a pure function of the cone's *structure*: node ids of
/// the source graph never leak in. Boundary elements become local sources:
///
/// * driving registers turn into 1-bit self-holding DFFs named
///   `signal[bit]` (launch timing is clk→Q, independent of D),
/// * primary inputs and constants keep their identity.
///
/// The target signal's registers come first (builder regs `0..width`), so a
/// per-endpoint computation over the sub-graph covers exactly the signal's
/// endpoints by iterating `0..width`.
///
/// # Panics
///
/// Panics if `sig` is out of range.
pub fn extract_signal_cone(bog: &Bog, sig: usize) -> Bog {
    let s = &bog.signals()[sig];
    let mut b = BogBuilder::new(bog.name.clone(), bog.variant);
    let qs = b.signal(s.name.clone(), s.width, s.decl_line, s.top_level);

    let input_names: HashMap<NodeId, &str> = bog
        .inputs()
        .iter()
        .map(|(n, id)| (*id, n.as_str()))
        .collect();
    let reg_of_q: HashMap<NodeId, u32> = bog
        .regs()
        .iter()
        .enumerate()
        .map(|(i, r)| (r.q, i as u32))
        .collect();

    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for (bit, &ri) in s.regs.iter().enumerate() {
        map.insert(bog.regs()[ri as usize].q, qs[bit]);
    }
    // Builder register slots: the target signal occupies 0..width, boundary
    // registers follow in discovery order.
    let mut n_regs = s.width as usize;
    let mut boundary: Vec<(usize, NodeId)> = Vec::new(); // (builder reg, its q)

    let mut translate = |b: &mut BogBuilder, root: NodeId, map: &mut HashMap<NodeId, NodeId>| {
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if map.contains_key(&n) {
                continue;
            }
            let node = bog.node(n);
            if expanded {
                let f = node.fanins;
                let m = |x: NodeId| map[&x];
                let new_id = match node.op {
                    BogOp::Not => b.not(m(f[0])),
                    BogOp::And2 => b.and2(m(f[0]), m(f[1])),
                    BogOp::Or2 => b.or2(m(f[0]), m(f[1])),
                    BogOp::Xor2 => b.xor2(m(f[0]), m(f[1])),
                    BogOp::Mux2 => b.mux2(m(f[0]), m(f[1]), m(f[2])),
                    _ => unreachable!("sources handled on first visit"),
                };
                map.insert(n, new_id);
                continue;
            }
            match node.op {
                BogOp::Input => {
                    let name = input_names.get(&n).copied().unwrap_or("in");
                    let id = b.input(name.to_owned());
                    map.insert(n, id);
                }
                BogOp::Const0 => {
                    let id = b.const0();
                    map.insert(n, id);
                }
                BogOp::Const1 => {
                    let id = b.const1();
                    map.insert(n, id);
                }
                BogOp::Dff => {
                    // Boundary register: a 1-bit self-holding launch point
                    // named after the original signal bit.
                    let r = &bog.regs()[reg_of_q[&n] as usize];
                    let src = &bog.signals()[r.signal as usize];
                    let q =
                        b.signal(format!("{}[{}]", src.name, r.bit), 1, src.decl_line, false)[0];
                    boundary.push((n_regs, q));
                    n_regs += 1;
                    map.insert(n, q);
                }
                _ => {
                    stack.push((n, true));
                    // Reverse so fanin slot 0 is translated first.
                    for &f in node.fanins[..node.op.arity()].iter().rev() {
                        if !map.contains_key(&f) {
                            stack.push((f, false));
                        }
                    }
                }
            }
        }
    };

    for &ri in &s.regs {
        let d = bog.regs()[ri as usize].d;
        translate(&mut b, d, &mut map);
    }
    for (bit, &ri) in s.regs.iter().enumerate() {
        b.set_reg_d(bit, map[&bog.regs()[ri as usize].d]);
    }
    for (reg_idx, q) in boundary {
        b.set_reg_d(reg_idx, q);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use crate::graph::Endpoint;
    use rtlt_verilog::compile;

    #[test]
    fn cone_counts_driving_registers() {
        let bog = blast(
            &compile(
                "module m(input clk, input [3:0] a, output [3:0] q);
                   reg [3:0] r1;
                   reg [3:0] r2;
                   always @(posedge clk) begin
                     r1 <= a;
                     r2 <= r1 + a;
                   end
                   assign q = r2;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        // Endpoint of r2 bit 3 depends on all lower r1 bits (ripple carry)
        // and on input bits.
        let sig_r2 = bog.signals().iter().position(|s| s.name == "r2").unwrap();
        let top_bit_reg = bog.signals()[sig_r2].regs[3] as usize;
        let ep = bog.regs()[top_bit_reg].d;
        let cone = input_cone(&bog, ep);
        assert!(cone.driving_regs >= 4, "cone regs {}", cone.driving_regs);
        assert!(cone.driving_inputs >= 4);
        assert!(cone.size > 0 && cone.depth > 0);
        // Lower bits have smaller cones.
        let low_bit_reg = bog.signals()[sig_r2].regs[0] as usize;
        let low = input_cone(&bog, bog.regs()[low_bit_reg].d);
        assert!(low.size < cone.size);
    }

    #[test]
    fn extracted_cone_preserves_cone_shape() {
        let bog = blast(
            &compile(
                "module m(input clk, input [3:0] a, input [3:0] b, output [3:0] q);
                   reg [3:0] r1;
                   reg [3:0] r2;
                   always @(posedge clk) begin
                     r1 <= a ^ b;
                     r2 <= r1 + (a & r2);
                   end
                   assign q = r2;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        for (sig, s) in bog.signals().iter().enumerate() {
            let sub = extract_signal_cone(&bog, sig);
            assert_eq!(sub.signals()[0].name, s.name);
            assert_eq!(sub.signals()[0].width, s.width);
            for (bit, &ri) in s.regs.iter().enumerate() {
                let global = input_cone(&bog, bog.regs()[ri as usize].d);
                let local = input_cone(&sub, sub.regs()[bit].d);
                assert_eq!(global.driving_regs, local.driving_regs, "{}[{bit}]", s.name);
                assert_eq!(global.driving_inputs, local.driving_inputs);
                assert_eq!(global.size, local.size);
                assert_eq!(global.depth, local.depth);
            }
        }
    }

    #[test]
    fn extraction_is_canonical_across_unrelated_edits() {
        use rtlt_store::Codec;
        let src = |extra: &str| {
            format!(
                "module m(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
                   reg [7:0] keep;
                   reg [7:0] churn;
                   always @(posedge clk) begin
                     keep <= a + b;
                     churn <= {extra};
                   end
                   assign q = keep ^ churn;
                 endmodule"
            )
        };
        let base = blast(&compile(&src("a & b"), "m").unwrap());
        let edited = blast(&compile(&src("(a | b) + churn"), "m").unwrap());
        let sig =
            |bog: &Bog, name: &str| bog.signals().iter().position(|s| s.name == name).unwrap();
        // `keep`'s cone is untouched by the edit: canonical bytes match even
        // though global node ids shifted.
        let a = extract_signal_cone(&base, sig(&base, "keep"));
        let b = extract_signal_cone(&edited, sig(&edited, "keep"));
        assert_eq!(a.to_bytes(), b.to_bytes());
        // `churn`'s cone did change.
        let a = extract_signal_cone(&base, sig(&base, "churn"));
        let b = extract_signal_cone(&edited, sig(&edited, "churn"));
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn hold_register_has_empty_cone() {
        let bog = blast(
            &compile(
                "module m(input clk, input d, output q);
                   reg r;
                   always @(posedge clk) r <= r;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let ep = bog.endpoint_node(Endpoint::Reg(0));
        let cone = input_cone(&bog, ep);
        assert_eq!(cone.size, 0);
        assert_eq!(cone.depth, 0);
        assert_eq!(cone.driving_regs, 1);
    }
}
