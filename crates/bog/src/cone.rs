//! Endpoint input cones.
//!
//! The register-oriented processing of the paper (§3.2) backtracks from each
//! endpoint to all driving registers — the endpoint's *input cone* `C`. The
//! cone's driving-register count sizes the random path sample `K_i` and is
//! itself a model feature (Table 2).

use crate::graph::{Bog, BogOp, NodeId};

/// Summary of an endpoint's combinational input cone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConeInfo {
    /// Distinct register Q pins driving the endpoint.
    pub driving_regs: usize,
    /// Distinct primary-input bits driving the endpoint.
    pub driving_inputs: usize,
    /// Combinational operator count inside the cone.
    pub size: usize,
    /// Logic depth (operator count on the longest path) of the cone.
    pub depth: u32,
}

/// Computes the input cone of the node `endpoint` (usually a register D pin
/// or output driver) by backward traversal.
pub fn input_cone(bog: &Bog, endpoint: NodeId) -> ConeInfo {
    let mut info = ConeInfo::default();
    let mut seen = vec![false; bog.len()];
    let mut stack = vec![endpoint];
    let levels = None::<&[u32]>; // depth computed locally below
    let _ = levels;
    let mut depth_memo: Vec<Option<u32>> = vec![None; bog.len()];
    while let Some(id) = stack.pop() {
        if seen[id as usize] {
            continue;
        }
        seen[id as usize] = true;
        let node = bog.node(id);
        match node.op {
            BogOp::Dff => info.driving_regs += 1,
            BogOp::Input => info.driving_inputs += 1,
            BogOp::Const0 | BogOp::Const1 => {}
            _ => {
                info.size += 1;
                for &f in bog.fanins(id) {
                    if !seen[f as usize] {
                        stack.push(f);
                    }
                }
            }
        }
    }
    info.depth = cone_depth(bog, endpoint, &mut depth_memo);
    info
}

fn cone_depth(bog: &Bog, id: NodeId, memo: &mut [Option<u32>]) -> u32 {
    // Iterative post-order longest path to a source.
    let mut stack = vec![(id, false)];
    while let Some((n, expanded)) = stack.pop() {
        if memo[n as usize].is_some() {
            continue;
        }
        let node = bog.node(n);
        if !node.op.is_comb() {
            memo[n as usize] = Some(0);
            continue;
        }
        if expanded {
            let m = bog
                .fanins(n)
                .iter()
                .map(|&f| memo[f as usize].expect("child computed"))
                .max()
                .unwrap_or(0);
            memo[n as usize] = Some(m + 1);
        } else {
            stack.push((n, true));
            for &f in bog.fanins(n) {
                if memo[f as usize].is_none() {
                    stack.push((f, false));
                }
            }
        }
    }
    memo[id as usize].expect("computed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use crate::graph::Endpoint;
    use rtlt_verilog::compile;

    #[test]
    fn cone_counts_driving_registers() {
        let bog = blast(
            &compile(
                "module m(input clk, input [3:0] a, output [3:0] q);
                   reg [3:0] r1;
                   reg [3:0] r2;
                   always @(posedge clk) begin
                     r1 <= a;
                     r2 <= r1 + a;
                   end
                   assign q = r2;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        // Endpoint of r2 bit 3 depends on all lower r1 bits (ripple carry)
        // and on input bits.
        let sig_r2 = bog.signals().iter().position(|s| s.name == "r2").unwrap();
        let top_bit_reg = bog.signals()[sig_r2].regs[3] as usize;
        let ep = bog.regs()[top_bit_reg].d;
        let cone = input_cone(&bog, ep);
        assert!(cone.driving_regs >= 4, "cone regs {}", cone.driving_regs);
        assert!(cone.driving_inputs >= 4);
        assert!(cone.size > 0 && cone.depth > 0);
        // Lower bits have smaller cones.
        let low_bit_reg = bog.signals()[sig_r2].regs[0] as usize;
        let low = input_cone(&bog, bog.regs()[low_bit_reg].d);
        assert!(low.size < cone.size);
    }

    #[test]
    fn hold_register_has_empty_cone() {
        let bog = blast(
            &compile(
                "module m(input clk, input d, output q);
                   reg r;
                   always @(posedge clk) r <= r;
                   assign q = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let ep = bog.endpoint_node(Endpoint::Reg(0));
        let cone = input_cone(&bog, ep);
        assert_eq!(cone.size, 0);
        assert_eq!(cone.depth, 0);
        assert_eq!(cone.driving_regs, 1);
    }
}
