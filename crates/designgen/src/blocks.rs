//! Reusable Verilog text-emission building blocks.

use rand::rngs::StdRng;
use rand::Rng;

/// Emits `always @(*)`-style S-box: a `case` lookup from `sel` (in_bits
/// wide) to `out` (out_bits wide), with random but deterministic contents.
pub fn sbox(out: &str, sel: &str, in_bits: u32, out_bits: u32, rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push_str(&format!("  always @(*)\n    case ({sel})\n"));
    let n = 1u64 << in_bits;
    for i in 0..n - 1 {
        let v = rng.gen_range(0..(1u64 << out_bits));
        s.push_str(&format!("      {in_bits}'d{i}: {out} = {out_bits}'d{v};\n"));
    }
    let v = rng.gen_range(0..(1u64 << out_bits));
    s.push_str(&format!("      default: {out} = {out_bits}'d{v};\n"));
    s.push_str("    endcase\n");
    s
}

/// Left-rotate expression text for a `width`-bit value.
pub fn rotl(x: &str, width: u32, by: u32) -> String {
    let by = by % width;
    if by == 0 {
        x.to_owned()
    } else {
        format!(
            "{{{x}[{}:0], {x}[{}:{}]}}",
            width - by - 1,
            width - 1,
            width - by
        )
    }
}

/// A random simple combinational mix of two operands (text expression).
pub fn mix(a: &str, b: &str, width: u32, rng: &mut StdRng) -> String {
    match rng.gen_range(0..6) {
        0 => format!("({a} ^ {b})"),
        1 => format!("({a} + {b})"),
        2 => format!("({a} & {b}) | ({a} ^ {b})"),
        3 => format!("({a} - {b})"),
        4 => format!("({a} ^ {})", rotl(b, width, rng.gen_range(1..width))),
        _ => format!("(({a} << 1) ^ {b})"),
    }
}

/// Declares an always block implementing a small random FSM over `states`
/// states, reading condition bits from `cond` (a signal name with at least
/// `states` bits) and driving `state` (a declared reg wide enough).
pub fn fsm(state: &str, cond: &str, states: u32, state_bits: u32, rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push_str("  always @(posedge clk)\n    if (rst) ");
    s.push_str(&format!(
        "{state} <= {state_bits}'d0;\n    else case ({state})\n"
    ));
    for st in 0..states {
        let t1 = rng.gen_range(0..states);
        let t2 = rng.gen_range(0..states);
        let bit = rng.gen_range(0..states.min(31));
        s.push_str(&format!(
            "      {state_bits}'d{st}: {state} <= {cond}[{bit}] ? {state_bits}'d{t1} : {state_bits}'d{t2};\n"
        ));
    }
    s.push_str(&format!(
        "      default: {state} <= {state_bits}'d0;\n    endcase\n"
    ));
    s
}

/// Number of bits needed to index `n` items.
pub fn clog2(n: u32) -> u32 {
    32 - (n.max(2) - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rotl_edges() {
        assert_eq!(rotl("x", 8, 0), "x");
        assert_eq!(rotl("x", 8, 8), "x");
        assert_eq!(rotl("x", 8, 3), "{x[4:0], x[7:5]}");
    }

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(8), 3);
    }

    #[test]
    fn sbox_emits_all_arms() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sbox("y", "x", 4, 4, &mut rng);
        assert_eq!(
            s.matches("4'd").count() - s.matches(": y = 4'd").count(),
            15
        );
        assert!(s.contains("default"));
    }
}
