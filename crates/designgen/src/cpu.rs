//! CPU-pipeline analogues (Rocket / VexRiscv families): program counter,
//! decode, register file, forwarding, ALU (optionally with a multiplier),
//! and writeback — the structures that dominate real cores' timing.

use crate::blocks::{clog2, mix, rotl};
use rand::rngs::StdRng;
use rand::Rng;

/// Generates a pipelined core.
///
/// * `width` — datapath width (16/24/32);
/// * `nregs` — architectural register count (8/16);
/// * `extra` — number of auxiliary functional-unit stages (scales size);
/// * `has_mul` — include a half-width multiplier unit.
pub fn core(
    name: &str,
    width: u32,
    nregs: u32,
    extra: u32,
    has_mul: bool,
    rng: &mut StdRng,
) -> String {
    let w = width - 1;
    let rbits = clog2(nregs);
    let half = width / 2;
    let mut s = String::new();
    s.push_str(&format!(
        "module {name}(input clk, input rst, input [31:0] instr_in, input [{w}:0] io_in, output [{w}:0] io_out, output [{pcw}:0] pc_out);\n",
        pcw = w
    ));

    // Fetch.
    s.push_str(&format!("  reg [{w}:0] pc;\n  reg [31:0] instr;\n"));
    // Decode fields.
    s.push_str(&format!(
        "  wire [3:0] opcode;\n  wire [{rb}:0] rs1;\n  wire [{rb}:0] rs2;\n  wire [{rb}:0] rd;\n  wire [7:0] imm;\n",
        rb = rbits - 1
    ));
    s.push_str("  assign opcode = instr[3:0];\n");
    s.push_str(&format!("  assign rs1 = instr[{}:{}];\n", 4 + rbits - 1, 4));
    s.push_str(&format!(
        "  assign rs2 = instr[{}:{}];\n",
        4 + 2 * rbits - 1,
        4 + rbits
    ));
    s.push_str(&format!(
        "  assign rd  = instr[{}:{}];\n",
        4 + 3 * rbits - 1,
        4 + 2 * rbits
    ));
    s.push_str("  assign imm = instr[31:24];\n");

    // Register file.
    for i in 0..nregs {
        s.push_str(&format!("  reg [{w}:0] rf{i};\n"));
    }
    s.push_str(&format!("  reg [{w}:0] rdata1;\n  reg [{w}:0] rdata2;\n"));
    for (port, sel) in [("rdata1", "rs1"), ("rdata2", "rs2")] {
        s.push_str(&format!("  always @(*)\n    case ({sel})\n"));
        for i in 0..nregs - 1 {
            s.push_str(&format!("      {rbits}'d{i}: {port} = rf{i};\n"));
        }
        s.push_str(&format!(
            "      default: {port} = rf{};\n    endcase\n",
            nregs - 1
        ));
    }

    // Forwarding from writeback.
    s.push_str(&format!(
        "  reg [{w}:0] wb_val;\n  reg [{rb}:0] wb_rd;\n  reg wb_we;\n",
        rb = rbits - 1
    ));
    s.push_str(&format!(
        "  wire [{w}:0] op1;\n  wire [{w}:0] op2;\n  assign op1 = (wb_we && (wb_rd == rs1)) ? wb_val : rdata1;\n  assign op2 = (wb_we && (wb_rd == rs2)) ? wb_val : rdata2;\n"
    ));

    // Execute: ALU.
    s.push_str(&format!("  reg [{w}:0] alu;\n"));
    if has_mul {
        s.push_str(&format!(
            "  wire [{pw}:0] prod;\n  assign prod = op1[{h1}:0] * op2[{h1}:0];\n",
            pw = 2 * half - 1,
            h1 = half - 1
        ));
    }
    s.push_str("  always @(*)\n    case (opcode)\n");
    let shift_bits = clog2(width);
    let mut arms: Vec<String> = vec![
        format!("alu = op1 + op2"),
        format!("alu = op1 - op2"),
        format!("alu = op1 & op2"),
        format!("alu = op1 | op2"),
        format!("alu = op1 ^ op2"),
        format!("alu = op1 << op2[{}:0]", shift_bits - 1),
        format!("alu = op1 >> op2[{}:0]", shift_bits - 1),
        format!("alu = (op1 < op2) ? {width}'d1 : {width}'d0"),
        format!(
            "alu = op1 + {{{pad}, imm}}",
            pad = format!("{}'d0", width - 8)
        ),
        format!("alu = ~(op1 & op2)"),
    ];
    if has_mul {
        arms.push(format!("alu = prod[{w}:0]"));
    }
    for (i, a) in arms.iter().enumerate() {
        s.push_str(&format!("      4'd{i}: {a};\n"));
    }
    s.push_str("      default: alu = op1;\n    endcase\n");

    // Branch/next-PC.
    s.push_str("  wire take;\n  assign take = (opcode == 4'd15) && (op1 == op2);\n");
    s.push_str(&format!(
        "  always @(posedge clk)\n    if (rst) pc <= {width}'d0;\n    else pc <= take ? pc + {{{pw}'d0, imm}} : pc + {width}'d4;\n",
        pw = width - 8
    ));
    s.push_str(&format!(
        "  always @(posedge clk)\n    if (rst) instr <= 32'd0;\n    else instr <= instr_in ^ {{pc[{p}:0], pc[{w}:{q}]}};\n",
        p = 31.min(w),
        q = w.saturating_sub(31),
    ));

    // Memory-ish stage + writeback pipeline registers.
    s.push_str(&format!(
        "  reg [{w}:0] ex_mem;\n  always @(posedge clk)\n    if (rst) ex_mem <= {width}'d0;\n    else ex_mem <= alu ^ (io_in & {{{width}{{opcode[3]}}}});\n"
    ));
    s.push_str(&format!(
        "  always @(posedge clk)\n    if (rst) begin wb_val <= {width}'d0; wb_rd <= {rbits}'d0; wb_we <= 1'b0; end\n    else begin wb_val <= ex_mem; wb_rd <= rd; wb_we <= opcode != 4'd15; end\n"
    ));

    // Register file write.
    for i in 0..nregs {
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) rf{i} <= {width}'d0;\n    else if (wb_we && (wb_rd == {rbits}'d{i})) rf{i} <= wb_val;\n"
        ));
    }

    // Auxiliary functional-unit chain (scales design size).
    for e in 0..extra {
        s.push_str(&format!("  reg [{w}:0] fu{e};\n"));
        let src = if e == 0 {
            "ex_mem".to_owned()
        } else {
            format!("fu{}", e - 1)
        };
        let m = mix(&src, "io_in", width, rng);
        let rot = rotl(&src, width, rng.gen_range(1..width));
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) fu{e} <= {width}'d0;\n    else fu{e} <= {m} ^ {rot};\n"
        ));
    }

    let last_fu = if extra > 0 {
        format!("fu{}", extra - 1)
    } else {
        "ex_mem".to_owned()
    };
    s.push_str(&format!("  assign io_out = wb_val ^ {last_fu};\n"));
    s.push_str("  assign pc_out = pc;\n");
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn core_compiles_and_has_regfile_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let src = core("c", 16, 8, 2, true, &mut rng);
        let n = rtlt_verilog::compile(&src, "c").expect("valid");
        // 8 × 16 regfile bits plus pipeline state.
        assert!(n.stats().reg_bits >= 8 * 16 + 16);
    }

    #[test]
    fn extra_units_scale_size() {
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let small = rtlt_verilog::compile(&core("c", 16, 8, 2, false, &mut r1), "c").unwrap();
        let big = rtlt_verilog::compile(&core("c", 16, 8, 10, false, &mut r2), "c").unwrap();
        assert!(big.stats().ops > small.stats().ops);
    }
}
