//! Crypto-core analogues: DES-like Feistel pipeline (`syscdes`) and an
//! AES-like SPN (`syscaes`).

use crate::blocks::{rotl, sbox};
use rand::rngs::StdRng;
use rand::Rng;

/// A pipelined Feistel network: `rounds` rounds, 32-bit halves, four 4→4
/// S-boxes per round plus expansion/permutation by rotations.
pub fn des_like(name: &str, rounds: u32, rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "module {name}(input clk, input rst, input [63:0] din, input [31:0] key, output [63:0] dout);\n"
    ));
    for r in 0..=rounds {
        s.push_str(&format!("  reg [31:0] l{r};\n  reg [31:0] r{r};\n"));
    }
    s.push_str("  always @(posedge clk)\n    if (rst) begin l0 <= 32'd0; r0 <= 32'd0; end\n");
    s.push_str("    else begin l0 <= din[63:32]; r0 <= din[31:0]; end\n");

    for r in 0..rounds {
        let nxt = r + 1;
        // Round function: expand (rotations), key mix, S-boxes, permute.
        s.push_str(&format!("  wire [31:0] e{r};\n"));
        let rot_a = rng.gen_range(1..31);
        let rot_b = rng.gen_range(1..31);
        s.push_str(&format!(
            "  assign e{r} = ({} ^ {}) ^ (key ^ {});\n",
            rotl(&format!("r{r}"), 32, rot_a),
            rotl(&format!("r{r}"), 32, rot_b),
            rotl("key", 32, (r * 5 + 1) % 31 + 1)
        ));
        for b in 0..4 {
            s.push_str(&format!("  reg [3:0] sb{r}_{b};\n"));
        }
        for b in 0..4u32 {
            let lo = b * 8;
            s.push_str(&sbox(
                &format!("sb{r}_{b}"),
                &format!("e{r}[{}:{}]", lo + 3, lo),
                4,
                4,
                rng,
            ));
        }
        s.push_str(&format!(
            "  wire [31:0] g{r};\n  assign g{r} = {{e{r}[31:16], sb{r}_3, sb{r}_2, sb{r}_1, sb{r}_0}};\n"
        ));
        s.push_str(&format!("  wire [31:0] f{r};\n"));
        s.push_str(&format!(
            "  assign f{r} = {};\n",
            rotl(&format!("g{r}"), 32, rng.gen_range(1..31))
        ));
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) begin l{nxt} <= 32'd0; r{nxt} <= 32'd0; end\n    else begin l{nxt} <= r{r}; r{nxt} <= l{r} ^ f{r}; end\n"
        ));
    }
    s.push_str(&format!("  assign dout = {{l{rounds}, r{rounds}}};\n"));
    s.push_str("endmodule\n");
    s
}

/// An AES-like substitution–permutation network on a 32-bit state with an
/// evolving round-key register.
pub fn aes_like(name: &str, rounds: u32, rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "module {name}(input clk, input rst, input [31:0] din, input [31:0] key_in, output [31:0] dout);\n"
    ));
    for r in 0..=rounds {
        s.push_str(&format!("  reg [31:0] st{r};\n  reg [31:0] k{r};\n"));
    }
    s.push_str("  always @(posedge clk)\n    if (rst) begin st0 <= 32'd0; k0 <= 32'd0; end\n");
    s.push_str("    else begin st0 <= din; k0 <= key_in; end\n");

    for r in 0..rounds {
        let nxt = r + 1;
        // SubBytes: eight 4→4 S-boxes.
        for b in 0..8 {
            s.push_str(&format!("  reg [3:0] sub{r}_{b};\n"));
        }
        for b in 0..8u32 {
            let lo = b * 4;
            s.push_str(&sbox(
                &format!("sub{r}_{b}"),
                &format!("st{r}[{}:{}]", lo + 3, lo),
                4,
                4,
                rng,
            ));
        }
        s.push_str(&format!(
            "  wire [31:0] subw{r};\n  assign subw{r} = {{sub{r}_7, sub{r}_6, sub{r}_5, sub{r}_4, sub{r}_3, sub{r}_2, sub{r}_1, sub{r}_0}};\n"
        ));
        // ShiftRows + MixColumns as rotation XORs.
        let r1 = rng.gen_range(1..31);
        let r2 = rng.gen_range(1..31);
        s.push_str(&format!(
            "  wire [31:0] mixw{r};\n  assign mixw{r} = subw{r} ^ {} ^ {};\n",
            rotl(&format!("subw{r}"), 32, r1),
            rotl(&format!("subw{r}"), 32, r2)
        ));
        // Key schedule: rotate, S-box one nibble, add round constant.
        s.push_str(&format!("  reg [3:0] ks{r};\n"));
        s.push_str(&sbox(&format!("ks{r}"), &format!("k{r}[3:0]"), 4, 4, rng));
        let rc = rng.gen_range(1u64..0xffff_ffff);
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) begin st{nxt} <= 32'd0; k{nxt} <= 32'd0; end\n    else begin st{nxt} <= mixw{r} ^ k{r}; k{nxt} <= ({} ^ 32'd{rc}) + {{28'd0, ks{r}}}; end\n",
            rotl(&format!("k{r}"), 32, 8)
        ));
    }
    s.push_str(&format!("  assign dout = st{rounds} ^ k{rounds};\n"));
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn des_like_compiles_with_expected_pipeline() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = des_like("d", 3, &mut rng);
        let n = rtlt_verilog::compile(&src, "d").expect("valid");
        // (rounds+1) × 64 state bits; S-box `reg`s are combinational.
        assert_eq!(n.stats().reg_bits, 4 * 64);
    }

    #[test]
    fn aes_like_compiles() {
        let mut rng = StdRng::seed_from_u64(2);
        let src = aes_like("a", 2, &mut rng);
        let n = rtlt_verilog::compile(&src, "a").expect("valid");
        assert!(n.stats().reg_bits >= 3 * 64);
    }
}
