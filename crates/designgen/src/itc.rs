//! ITC'99-style control-dominated cores (b17/b18/b20/b22 analogues).

use crate::blocks::{fsm, mix, rotl};
use rand::rngs::StdRng;
use rand::Rng;

/// A control-dominated core: `n_fsm` interacting FSMs, counters gated by
/// FSM states, and accumulators mixing counter/datapath values.
pub fn control_core(
    name: &str,
    n_fsm: u32,
    width: u32,
    n_counters: u32,
    rng: &mut StdRng,
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "module {name}(input clk, input rst, input [31:0] din, input [15:0] ctrl, output [{w}:0] dout, output busy);\n",
        w = width - 1
    ));
    for i in 0..n_fsm {
        s.push_str(&format!("  reg [3:0] state{i};\n"));
    }
    for i in 0..n_counters {
        s.push_str(&format!("  reg [{w}:0] cnt{i};\n", w = width - 1));
    }
    for i in 0..n_fsm {
        s.push_str(&format!("  reg [{w}:0] acc{i};\n", w = width - 1));
    }
    s.push_str(&format!("  reg [{w}:0] alu;\n", w = width - 1));

    // FSMs conditioned on input bits and cross-coupled on other FSM states.
    for i in 0..n_fsm {
        let states = rng.gen_range(5..=12).min(15);
        s.push_str(&fsm(&format!("state{i}"), "din", states, 4, rng));
    }

    // Counters gated by FSM states.
    for i in 0..n_counters {
        let f = rng.gen_range(0..n_fsm);
        let st = rng.gen_range(0..8);
        let step = rng.gen_range(1..7);
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) cnt{i} <= {width}'d0;\n    else if (state{f} == 4'd{st}) cnt{i} <= cnt{i} + {width}'d{step};\n"
        ));
    }

    // Accumulators mixing counters, input slices, and each other.
    for i in 0..n_fsm {
        let c = rng.gen_range(0..n_counters);
        let other = (i + 1) % n_fsm;
        let m1 = mix(&format!("acc{i}"), &format!("cnt{c}"), width, rng);
        let m2 = mix(&m1, &format!("acc{other}"), width, rng);
        let din_slice = format!("din[{}:0]", (width - 1).min(31));
        let guard = rng.gen_range(0..16);
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) acc{i} <= {width}'d0;\n    else if (ctrl[{b}]) acc{i} <= {m2} ^ {din_slice};\n    else acc{i} <= {};\n",
            rotl(&format!("acc{i}"), width, (guard % (width - 1)) + 1),
            b = i % 16,
        ));
    }

    // A small shared ALU (combinational) exercised by ctrl.
    s.push_str("  always @(*)\n    case (ctrl[2:0])\n");
    for op in 0..7 {
        let a = format!("acc{}", op % n_fsm);
        let b = format!("cnt{}", op % n_counters);
        let e = match op {
            0 => format!("{a} + {b}"),
            1 => format!("{a} - {b}"),
            2 => format!("{a} & {b}"),
            3 => format!("{a} | {b}"),
            4 => format!("{a} ^ {b}"),
            5 => format!("{a} + ({b} << 2)"),
            _ => format!("({a} < {b}) ? {a} : {b}"),
        };
        s.push_str(&format!("      3'd{op}: alu = {e};\n"));
    }
    s.push_str(&format!("      default: alu = {width}'d0;\n    endcase\n"));

    // Outputs.
    let xor_accs: Vec<String> = (0..n_fsm).map(|i| format!("acc{i}")).collect();
    s.push_str(&format!(
        "  assign dout = alu ^ {};\n",
        xor_accs.join(" ^ ")
    ));
    let states_or: Vec<String> = (0..n_fsm).map(|i| format!("(state{i} != 4'd0)")).collect();
    s.push_str(&format!("  assign busy = {};\n", states_or.join(" | ")));
    s.push_str("endmodule\n");
    s
}

/// A small arithmetic-heavy core with a low sequential ratio (b20/b22
/// analogue — the paper flags these as hard to optimize further, with large
/// power/area overheads).
pub fn arith_core(name: &str, width: u32, stages: u32, rng: &mut StdRng) -> String {
    let w = width - 1;
    let half = width / 2;
    let mut s = String::new();
    s.push_str(&format!(
        "module {name}(input clk, input rst, input [{w}:0] a, input [{w}:0] b, output [{w}:0] dout);\n"
    ));
    s.push_str(&format!("  wire [{}:0] prod;\n", 2 * half - 1));
    s.push_str(&format!(
        "  assign prod = a[{h1}:0] * b[{h1}:0];\n",
        h1 = half - 1
    ));
    for i in 0..stages {
        s.push_str(&format!("  reg [{w}:0] st{i};\n"));
    }
    // Deep combinational mix feeding a couple of registers.
    let mut expr = format!(
        "(prod[{w}:0] ^ {{b[{h1}:0], a[{w}:{half}]}})",
        h1 = half - 1
    );
    for _ in 0..3 {
        let r = rng.gen_range(1..width);
        expr = format!("({expr} + {})", rotl("a", width, r));
    }
    s.push_str(&format!(
        "  always @(posedge clk)\n    if (rst) st0 <= {width}'d0;\n    else st0 <= {expr};\n"
    ));
    for i in 1..stages {
        let prev = i - 1;
        let m = mix(&format!("st{prev}"), "b", width, rng);
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) st{i} <= {width}'d0;\n    else st{i} <= {m};\n"
        ));
    }
    s.push_str(&format!("  assign dout = st{};\n", stages - 1));
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn control_core_compiles() {
        let mut rng = StdRng::seed_from_u64(42);
        let src = control_core("t", 3, 8, 2, &mut rng);
        let n = rtlt_verilog::compile(&src, "t").expect("valid");
        // FSM states + counters + accumulators (`alu` is combinational).
        assert_eq!(n.regs().len(), 3 + 2 + 3);
    }

    #[test]
    fn arith_core_has_low_seq_ratio() {
        let mut rng = StdRng::seed_from_u64(43);
        let src = arith_core("t", 16, 2, &mut rng);
        let n = rtlt_verilog::compile(&src, "t").expect("valid");
        let bog = rtlt_bog::blast(&n);
        let st = bog.stats();
        assert!(
            st.comb_total > 4 * st.dff,
            "comb {} should dwarf seq {}",
            st.comb_total,
            st.dff
        );
    }
}
