//! Deterministic synthetic benchmark designs.
//!
//! The paper evaluates on 21 open-source designs (ITC'99, OpenCores,
//! Chipyard, VexRiscv — Table 3). Those RTL sources and their
//! Chisel/SpinalHDL elaboration pipelines are unavailable offline, so this
//! crate generates a 21-design suite with the same family mix and the same
//! *kind* of structure (control-dominated FSM cores, crypto rounds, bus
//! fabric, FPU datapath, CPU pipelines), scaled ~10× down (DESIGN.md §2).
//! Every design is emitted as Verilog **text** and flows through the real
//! frontend — nothing is hand-constructed at the IR level.
//!
//! Generation is deterministic: the same name always produces the same
//! source.
//!
//! # Example
//!
//! ```
//! let src = rtlt_designgen::generate("b17").expect("known design");
//! let netlist = rtlt_verilog::compile(&src, "b17").expect("valid subset Verilog");
//! assert!(!netlist.regs().is_empty());
//! ```

mod blocks;
mod cpu;
mod crypto;
mod fabric;
pub mod hier;
mod itc;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Benchmark family, mirroring Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// ITC'99-style control-dominated cores (paper: VHDL).
    Itc99,
    /// OpenCores-style IP (paper: Verilog).
    OpenCores,
    /// Chipyard/Rocket-style cores (paper: Chisel).
    Chipyard,
    /// VexRiscv-style cores (paper: SpinalHDL).
    VexRiscv,
}

impl Family {
    /// HDL label the paper associates with the family.
    pub fn hdl(&self) -> &'static str {
        match self {
            Family::Itc99 => "VHDL",
            Family::OpenCores => "Verilog",
            Family::Chipyard => "Chisel",
            Family::VexRiscv => "SpinalHDL",
        }
    }
}

/// One design in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpec {
    /// Design (and top module) name.
    pub name: &'static str,
    /// Family.
    pub family: Family,
}

/// The 21-design suite in the paper's Table 6 order.
pub fn catalog() -> Vec<DesignSpec> {
    use Family::*;
    vec![
        DesignSpec {
            name: "syscdes",
            family: OpenCores,
        },
        DesignSpec {
            name: "syscaes",
            family: OpenCores,
        },
        DesignSpec {
            name: "Vex_1",
            family: VexRiscv,
        },
        DesignSpec {
            name: "b20",
            family: Itc99,
        },
        DesignSpec {
            name: "Vex_2",
            family: VexRiscv,
        },
        DesignSpec {
            name: "Vex_3",
            family: VexRiscv,
        },
        DesignSpec {
            name: "b22",
            family: Itc99,
        },
        DesignSpec {
            name: "b17",
            family: Itc99,
        },
        DesignSpec {
            name: "b17_1",
            family: Itc99,
        },
        DesignSpec {
            name: "Rocket1",
            family: Chipyard,
        },
        DesignSpec {
            name: "Rocket2",
            family: Chipyard,
        },
        DesignSpec {
            name: "Rocket3",
            family: Chipyard,
        },
        DesignSpec {
            name: "conmax",
            family: OpenCores,
        },
        DesignSpec {
            name: "b18",
            family: Itc99,
        },
        DesignSpec {
            name: "b18_1",
            family: Itc99,
        },
        DesignSpec {
            name: "FPU",
            family: OpenCores,
        },
        DesignSpec {
            name: "Marax",
            family: VexRiscv,
        },
        DesignSpec {
            name: "Vex_4",
            family: VexRiscv,
        },
        DesignSpec {
            name: "Vex5",
            family: VexRiscv,
        },
        DesignSpec {
            name: "Vex6",
            family: VexRiscv,
        },
        DesignSpec {
            name: "Vex7",
            family: VexRiscv,
        },
    ]
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the name: deterministic, platform-independent.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Generates the Verilog source of a catalog design.
///
/// Returns `None` for unknown names.
pub fn generate(name: &str) -> Option<String> {
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let src = match name {
        // ITC'99-style: (FSMs, data width, counters); b20/b22 deliberately
        // small with a low sequential ratio (the paper marks them as such).
        "b17" => itc::control_core("b17", 6, 16, 4, &mut rng),
        "b17_1" => itc::control_core("b17_1", 7, 16, 4, &mut rng),
        "b18" => itc::control_core("b18", 12, 24, 8, &mut rng),
        "b18_1" => itc::control_core("b18_1", 13, 24, 8, &mut rng),
        "b20" => itc::arith_core("b20", 16, 4, &mut rng),
        "b22" => itc::arith_core("b22", 18, 4, &mut rng),
        // OpenCores-style.
        "syscdes" => crypto::des_like("syscdes", 8, &mut rng),
        "syscaes" => crypto::aes_like("syscaes", 5, &mut rng),
        "conmax" => fabric::crossbar("conmax", 4, 4, 16, &mut rng),
        "FPU" => fabric::fpu("FPU", &mut rng),
        // Chipyard-style cores.
        "Rocket1" => cpu::core("Rocket1", 24, 8, 12, true, &mut rng),
        "Rocket2" => cpu::core("Rocket2", 32, 8, 12, true, &mut rng),
        "Rocket3" => cpu::core("Rocket3", 24, 16, 12, false, &mut rng),
        // VexRiscv-style spread (widest size range in the paper).
        "Vex_1" => cpu::core("Vex_1", 32, 16, 16, true, &mut rng),
        "Vex_2" => cpu::core("Vex_2", 16, 8, 8, false, &mut rng),
        "Vex_3" => cpu::core("Vex_3", 16, 8, 12, true, &mut rng),
        "Vex_4" => cpu::core("Vex_4", 24, 8, 10, false, &mut rng),
        "Vex5" => cpu::core("Vex5", 32, 8, 10, true, &mut rng),
        "Vex6" => cpu::core("Vex6", 24, 16, 8, false, &mut rng),
        "Vex7" => cpu::core("Vex7", 16, 16, 10, true, &mut rng),
        "Marax" => fabric::mac_dsp("Marax", 16, 4, &mut rng),
        _ => return None,
    };
    Some(src)
}

/// Generates every design of the suite as `(name, source)` pairs.
pub fn generate_all() -> Vec<(String, String)> {
    catalog()
        .into_iter()
        .map(|s| (s.name.to_owned(), generate(s.name).expect("catalog design")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_21_designs_with_paper_family_mix() {
        let c = catalog();
        assert_eq!(c.len(), 21);
        let count = |f: Family| c.iter().filter(|d| d.family == f).count();
        assert_eq!(count(Family::Itc99), 6);
        assert_eq!(count(Family::OpenCores), 4);
        assert_eq!(count(Family::Chipyard), 3);
        assert_eq!(count(Family::VexRiscv), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate("b17"), generate("b17"));
        assert_ne!(generate("b17"), generate("b18"));
    }

    #[test]
    fn unknown_design_returns_none() {
        assert!(generate("nonexistent").is_none());
    }

    #[test]
    fn every_design_compiles_and_blasts() {
        for spec in catalog() {
            let src = generate(spec.name).unwrap();
            let netlist = rtlt_verilog::compile(&src, spec.name)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(!netlist.regs().is_empty(), "{} has no registers", spec.name);
            let stats = rtlt_bog::blast(&netlist).stats();
            assert!(
                stats.comb_total > 300,
                "{} too small: {} bit-level ops",
                spec.name,
                stats.comb_total
            );
            assert!(
                stats.dff >= 40,
                "{}: only {} endpoints",
                spec.name,
                stats.dff
            );
        }
    }
}
