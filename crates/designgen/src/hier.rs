//! Hierarchical multi-module demo designs for the incremental
//! re-annotation loop.
//!
//! The 21-design suite is flat (one module per design); the incremental
//! pipeline's whole point is *module-granular* invalidation, so this
//! generator emits a design with real hierarchy: `N` lane modules with
//! disjoint logic cones, each instantiated once by a top that merges their
//! outputs. Editing one lane must leave every other lane's featurize
//! shards warm — the structure the `annotate` bench binary and the CI
//! smoke job assert on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Names one lane module of [`soc`].
pub fn lane_name(i: usize) -> String {
    format!("lane{i}")
}

fn lane_module(name: &str, width: u32, depth: u32, rng: &mut StdRng) -> String {
    let w = width - 1;
    let mut s = String::new();
    s.push_str(&format!(
        "module {name}(input clk, input [{w}:0] x, output [{w}:0] y);\n"
    ));
    for d in 0..depth {
        s.push_str(&format!("  reg [{w}:0] p{d};\n"));
    }
    // Stage 0: multiply-accumulate of the input with itself — multipliers
    // give each lane a deep, wide cone, so featurization (the shardable
    // cost) dominates the design's preparation.
    let r0 = rng.gen_range(1..width);
    let h = width / 2 - 1;
    s.push_str(&format!(
        "  always @(posedge clk) begin\n    p0 <= (x[{h}:0] * x[{w}:{hp}]) + {{x[{r}:0], x[{w}:{rp}]}};\n",
        hp = h + 1,
        r = r0 - 1,
        rp = r0,
    ));
    for d in 1..depth {
        let prev = d - 1;
        let op = match rng.gen_range(0..4u32) {
            0 => format!("p{prev} + (x ^ p{prev})"),
            1 => format!("p{prev} + (p{prev}[{h}:0] * x[{w}:{hp}])", hp = h + 1),
            2 => format!("(p{prev} & x) + (p{prev} | x)"),
            _ => format!("p{prev} + (x[{h}:0] * p{prev}[{h}:0])"),
        };
        s.push_str(&format!("    p{d} <= {op};\n"));
    }
    s.push_str("  end\n");
    s.push_str(&format!("  assign y = p{};\n", depth - 1));
    s.push_str("endmodule\n");
    s
}

/// Generates a hierarchical design: `lanes` lane modules (disjoint cones,
/// `depth` pipeline registers each) under a `top` that xor-merges their
/// outputs into one accumulator. Deterministic in all arguments.
pub fn soc(top: &str, lanes: usize, width: u32, depth: u32) -> String {
    let mut rng = StdRng::seed_from_u64(crate::seed_for(top) ^ lanes as u64);
    let w = width - 1;
    let mut s = String::new();
    for i in 0..lanes {
        s.push_str(&lane_module(&lane_name(i), width, depth, &mut rng));
        s.push('\n');
    }
    s.push_str(&format!(
        "module {top}(input clk, input [{w}:0] din, output [{w}:0] q);\n"
    ));
    for i in 0..lanes {
        s.push_str(&format!("  wire [{w}:0] y{i};\n"));
    }
    for i in 0..lanes {
        // Stagger the lane inputs so cones differ across lanes.
        let rot = (i as u32) % width;
        let input = if rot == 0 {
            "din".to_owned()
        } else {
            format!("{{din[{r}:0], din[{w}:{rot}]}}", r = rot - 1)
        };
        s.push_str(&format!(
            "  {} u{i} (.clk(clk), .x({input}), .y(y{i}));\n",
            lane_name(i)
        ));
    }
    s.push_str(&format!("  reg [{w}:0] acc;\n"));
    let merged = (0..lanes)
        .map(|i| format!("y{i}"))
        .collect::<Vec<_>>()
        .join(" ^ ");
    s.push_str(&format!("  always @(posedge clk) acc <= {merged};\n"));
    s.push_str("  assign q = acc;\nendmodule\n");
    s
}

/// Applies a deterministic, behavior-changing edit to one lane module of a
/// [`soc`] source: the lane's first pipeline stage gains an extra xor term.
/// Returns `None` when the lane's stage-0 line cannot be found.
pub fn edit_lane(source: &str, lane: usize) -> Option<String> {
    let module_header = format!("module {}(", lane_name(lane));
    let start = source.find(&module_header)?;
    let end = source[start..].find("endmodule").map(|e| start + e)?;
    let body = &source[start..end];
    let marker = "p0 <= ";
    let pos = start + body.find(marker)?;
    let line_end = pos + source[pos..].find(';')?;
    let mut out = String::with_capacity(source.len() + 16);
    out.push_str(&source[..line_end]);
    out.push_str(" ^ (x >> 3)");
    out.push_str(&source[line_end..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc_compiles_and_has_per_lane_registers() {
        let src = soc("hier_soc", 4, 12, 3);
        let netlist = rtlt_verilog::compile(&src, "hier_soc").expect("valid subset Verilog");
        // 4 lanes × 3 pipeline regs + the top accumulator.
        assert_eq!(netlist.regs().len(), 4 * 3 + 1);
        assert!(netlist.regs().iter().any(|r| r.name == "u2.p1"));
    }

    #[test]
    fn soc_is_deterministic_and_lane_edit_changes_one_module() {
        let a = soc("hier_soc", 4, 12, 3);
        assert_eq!(a, soc("hier_soc", 4, 12, 3));
        let edited = edit_lane(&a, 2).expect("lane 2 edit");
        assert_ne!(a, edited);
        rtlt_verilog::compile(&edited, "hier_soc").expect("edited source still compiles");
        // Only lane2's module text differs.
        let mods_a = rtlt_verilog::modsrc::split_modules(&a).unwrap();
        let mods_b = rtlt_verilog::modsrc::split_modules(&edited).unwrap();
        for (ma, mb) in mods_a.modules.iter().zip(&mods_b.modules) {
            assert_eq!(ma.name, mb.name);
            assert_eq!(ma.text == mb.text, ma.name != "lane2", "{}", ma.name);
        }
    }
}
