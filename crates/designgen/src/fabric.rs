//! Interconnect and datapath IP analogues: a crossbar switch (`conmax`), a
//! floating-point-style datapath (`FPU`) and a MAC/DSP pipeline (`Marax`).

use crate::blocks::{clog2, rotl};
use rand::rngs::StdRng;
use rand::Rng;

/// An `m × n` crossbar with per-slave rotating-priority arbitration.
pub fn crossbar(name: &str, masters: u32, slaves: u32, dw: u32, rng: &mut StdRng) -> String {
    let d = dw - 1;
    let mut s = String::new();
    s.push_str(&format!("module {name}(input clk, input rst,"));
    for m in 0..masters {
        s.push_str(&format!(" input [{d}:0] mdat{m},"));
    }
    s.push_str(&format!(
        " input [{}:0] req, output [{d}:0] sout",
        masters * slaves - 1
    ));
    s.push_str(");\n");

    for sl in 0..slaves {
        let base = sl * masters;
        s.push_str(&format!("  reg [{}:0] ptr{sl};\n", clog2(masters) - 1));
        s.push_str(&format!("  reg [{}:0] grant{sl};\n", masters - 1));
        s.push_str(&format!("  reg [{d}:0] sdat{sl};\n"));
        // Rotate request by pointer, priority-encode, rotate grant back.
        s.push_str(&format!("  wire [{}:0] rq{sl};\n", masters - 1));
        s.push_str(&format!(
            "  assign rq{sl} = req[{}:{}];\n",
            base + masters - 1,
            base
        ));
        s.push_str(&format!("  reg [{}:0] g{sl};\n", masters - 1));
        // Priority arbitration per pointer value (rotating priority).
        s.push_str(&format!("  always @(*)\n    case (ptr{sl})\n"));
        for p in 0..masters {
            let mut arm = String::new();
            // casez-like chain: first requester at or after p wins.
            let mut expr = format!("{m}'d0", m = masters);
            for k in (0..masters).rev() {
                let idx = (p + k) % masters;
                expr = format!(
                    "rq{sl}[{idx}] ? {m}'d{oh} : ({expr})",
                    m = masters,
                    oh = 1u64 << idx
                );
            }
            arm.push_str(&format!(
                "      {pb}'d{p}: g{sl} = {expr};\n",
                pb = clog2(masters)
            ));
            s.push_str(&arm);
        }
        s.push_str(&format!(
            "      default: g{sl} = {m}'d0;\n    endcase\n",
            m = masters
        ));
        // Grant + pointer registers.
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) grant{sl} <= {m}'d0;\n    else grant{sl} <= g{sl};\n",
            m = masters
        ));
        s.push_str(&format!(
            "  always @(posedge clk)\n    if (rst) ptr{sl} <= {pb}'d0;\n    else if (g{sl} != {m}'d0) ptr{sl} <= ptr{sl} + {pb}'d1;\n",
            pb = clog2(masters),
            m = masters
        ));
        // Data mux.
        s.push_str(&format!("  always @(posedge clk)\n    if (rst) sdat{sl} <= {dw}'d0;\n    else case (grant{sl})\n"));
        for m in 0..masters {
            s.push_str(&format!(
                "      {mm}'d{oh}: sdat{sl} <= mdat{m};\n",
                mm = masters,
                oh = 1u64 << m
            ));
        }
        s.push_str(&format!(
            "      default: sdat{sl} <= sdat{sl};\n    endcase\n"
        ));
    }
    // Checksum pipeline over the switched data: gives the fabric realistic
    // multi-level arithmetic depth on top of the shallow arbiter logic.
    let xor: Vec<String> = (0..slaves).map(|sl| format!("sdat{sl}")).collect();
    s.push_str(&format!("  reg [{d}:0] csum;\n  reg [{d}:0] cacc;\n"));
    let r1 = rng.gen_range(1..dw);
    let r2 = rng.gen_range(1..dw);
    s.push_str(&format!(
        "  always @(posedge clk)\n    if (rst) csum <= {dw}'d0;\n    else csum <= ({}) + {};\n",
        xor.join(" ^ "),
        rotl("sdat0", dw, r1)
    ));
    s.push_str(&format!(
        "  always @(posedge clk)\n    if (rst) cacc <= {dw}'d0;\n    else cacc <= cacc + (csum ^ {});\n",
        rotl("csum", dw, r2)
    ));
    s.push_str("  assign sout = cacc;\n");
    s.push_str("endmodule\n");
    s
}

/// A floating-point-style pipeline: unpack, exponent align (variable
/// shift), mantissa add, leading-zero count, normalize, pack — plus a
/// mantissa multiplier path.
pub fn fpu(name: &str, rng: &mut StdRng) -> String {
    let mut s = String::new();
    let _ = rng;
    s.push_str(&format!(
        "module {name}(input clk, input rst, input [31:0] a, input [31:0] b, input op, output [31:0] res);\n"
    ));
    // Unpack (fp16-ish fields widened: 1/7/24).
    s.push_str(
        "  wire sa; wire sb; wire [6:0] ea; wire [6:0] eb; wire [23:0] ma; wire [23:0] mb;\n\
         \x20 assign sa = a[31]; assign sb = b[31];\n\
         \x20 assign ea = a[30:24]; assign eb = b[30:24];\n\
         \x20 assign ma = {1'b1, a[23:1]}; assign mb = {1'b1, b[23:1]};\n",
    );
    // Stage 1: align.
    s.push_str(
        "  reg [6:0] exp1; reg [23:0] mbig; reg [23:0] msmall; reg sgn1; reg op1r;\n\
         \x20 wire agtb; wire [6:0] ediff;\n\
         \x20 assign agtb = (ea > eb) || ((ea == eb) && (ma >= mb));\n\
         \x20 assign ediff = agtb ? (ea - eb) : (eb - ea);\n\
         \x20 always @(posedge clk)\n\
         \x20   if (rst) begin exp1 <= 7'd0; mbig <= 24'd0; msmall <= 24'd0; sgn1 <= 1'b0; op1r <= 1'b0; end\n\
         \x20   else begin\n\
         \x20     exp1 <= agtb ? ea : eb;\n\
         \x20     mbig <= agtb ? ma : mb;\n\
         \x20     msmall <= (agtb ? mb : ma) >> ediff[4:0];\n\
         \x20     sgn1 <= agtb ? sa : sb;\n\
         \x20     op1r <= op ^ sa ^ sb;\n\
         \x20   end\n",
    );
    // Stage 2: add/sub.
    s.push_str(
        "  reg [24:0] sum2; reg [6:0] exp2; reg sgn2;\n\
         \x20 always @(posedge clk)\n\
         \x20   if (rst) begin sum2 <= 25'd0; exp2 <= 7'd0; sgn2 <= 1'b0; end\n\
         \x20   else begin\n\
         \x20     sum2 <= op1r ? ({1'b0, mbig} - {1'b0, msmall}) : ({1'b0, mbig} + {1'b0, msmall});\n\
         \x20     exp2 <= exp1; sgn2 <= sgn1;\n\
         \x20   end\n",
    );
    // Stage 3: leading-zero count (priority casez) + normalize.
    s.push_str("  reg [4:0] lzc;\n  always @(*)\n    casez (sum2)\n");
    for i in 0..25u32 {
        let mut pat = String::new();
        for _ in 0..i {
            pat.push('0');
        }
        pat.push('1');
        for _ in i + 1..25 {
            pat.push('?');
        }
        s.push_str(&format!("      25'b{pat}: lzc = 5'd{i};\n"));
    }
    s.push_str("      default: lzc = 5'd24;\n    endcase\n");
    s.push_str(
        "  reg [24:0] norm3; reg [6:0] exp3; reg sgn3;\n\
         \x20 always @(posedge clk)\n\
         \x20   if (rst) begin norm3 <= 25'd0; exp3 <= 7'd0; sgn3 <= 1'b0; end\n\
         \x20   else begin\n\
         \x20     norm3 <= sum2 << lzc;\n\
         \x20     exp3 <= exp2 - {2'd0, lzc} + 7'd1;\n\
         \x20     sgn3 <= sgn2;\n\
         \x20   end\n",
    );
    // Multiplier path (mantissa high halves).
    s.push_str(
        "  reg [23:0] prod1;\n\
         \x20 always @(posedge clk)\n\
         \x20   if (rst) prod1 <= 24'd0;\n\
         \x20   else prod1 <= ma[23:12] * mb[23:12];\n\
         \x20 reg [23:0] prod2;\n\
         \x20 always @(posedge clk)\n\
         \x20   if (rst) prod2 <= 24'd0;\n\
         \x20   else prod2 <= prod1 + {12'd0, ma[11:0]};\n",
    );
    // Pack.
    s.push_str(
        "  assign res = {sgn3, exp3, norm3[24:1]} ^ {8'd0, prod2};\n\
         endmodule\n",
    );
    s
}

/// A multiply-accumulate DSP pipeline with saturation.
pub fn mac_dsp(name: &str, w: u32, taps: u32, rng: &mut StdRng) -> String {
    let d = w - 1;
    let acc_w = 2 * w + 4;
    let mut s = String::new();
    s.push_str(&format!(
        "module {name}(input clk, input rst, input [{d}:0] x, input [{d}:0] c0_in, output [{d}:0] y);\n"
    ));
    // Delay line.
    for t in 0..taps {
        s.push_str(&format!("  reg [{d}:0] z{t};\n"));
    }
    s.push_str("  always @(posedge clk)\n    if (rst) begin");
    for t in 0..taps {
        s.push_str(&format!(" z{t} <= {w}'d0;"));
    }
    s.push_str(" end\n    else begin z0 <= x;");
    for t in 1..taps {
        s.push_str(&format!(" z{t} <= z{};", t - 1));
    }
    s.push_str(" end\n");
    // Coefficients evolve slowly from input (keeps them live).
    for t in 0..taps {
        let r = rng.gen_range(1..w);
        s.push_str(&format!(
            "  reg [{d}:0] c{t};\n  always @(posedge clk)\n    if (rst) c{t} <= {w}'d{init};\n    else c{t} <= c{t} ^ ({src} >> {r});\n",
            init = rng.gen_range(1..(1u64 << (w - 1))),
            src = if t == 0 { "c0_in".to_owned() } else { format!("c{}", t - 1) },
        ));
    }
    // Products (half-width to bound area) and adder tree.
    let h = w / 2;
    for t in 0..taps {
        s.push_str(&format!(
            "  wire [{pw}:0] p{t};\n  assign p{t} = z{t}[{h1}:0] * c{t}[{h1}:0];\n",
            pw = 2 * h - 1,
            h1 = h - 1
        ));
    }
    let sum: Vec<String> = (0..taps)
        .map(|t| format!("{{{}'d0, p{t}}}", acc_w - 2 * h))
        .collect();
    s.push_str(&format!(
        "  reg [{aw}:0] acc;\n  always @(posedge clk)\n    if (rst) acc <= {accw}'d0;\n    else acc <= acc + {};\n",
        sum.join(" + "),
        aw = acc_w - 1,
        accw = acc_w
    ));
    // Saturating output with rounding.
    s.push_str(&format!(
        "  wire [{aw}:0] rounded;\n  assign rounded = acc + {accw}'d{half};\n",
        aw = acc_w - 1,
        accw = acc_w,
        half = 1u64 << (w - 1)
    ));
    s.push_str(&format!(
        "  reg [{d}:0] sat;\n  always @(posedge clk)\n    if (rst) sat <= {w}'d0;\n    else sat <= (rounded[{aw}:{w}] != {hi}'d0) ? {w}'d{max} : rounded[{d}:0];\n",
        aw = acc_w - 1,
        hi = acc_w - w,
        max = (1u64 << w) - 1
    ));
    s.push_str("  assign y = sat;\nendmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn crossbar_compiles() {
        let mut rng = StdRng::seed_from_u64(7);
        let src = crossbar("x", 4, 4, 16, &mut rng);
        let n = rtlt_verilog::compile(&src, "x").expect("valid");
        assert!(n.stats().reg_bits >= 4 * (16 + 4 + 2));
    }

    #[test]
    fn fpu_compiles_with_deep_paths() {
        let mut rng = StdRng::seed_from_u64(8);
        let src = fpu("f", &mut rng);
        let n = rtlt_verilog::compile(&src, "f").expect("valid");
        assert!(n.stats().ops > 100);
    }

    #[test]
    fn mac_compiles_and_saturates_width() {
        let mut rng = StdRng::seed_from_u64(9);
        let src = mac_dsp("m", 16, 4, &mut rng);
        let n = rtlt_verilog::compile(&src, "m").expect("valid");
        assert!(n.regs().iter().any(|r| r.name == "acc"));
    }
}
