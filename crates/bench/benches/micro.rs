//! Criterion micro-benchmarks over the pipeline stages: parsing,
//! elaboration, bit-blasting, variant conversion, pseudo-STA, path dataset
//! construction, synthesis, and model training/inference.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtl_timer::bitwise::{BitModelKind, BitwiseCorpus, BitwiseModel};
use rtl_timer::dataset::{build_all_variant_data_scratch, build_variant_data, FeaturizeScratch};
use rtlt_bog::{blast, BogVariant};
use rtlt_liberty::Library;
use rtlt_ml::{
    Binner, FeatureMatrix, Gbdt, GbdtParams, SquaredObjective, Tree, TreeParams, TreeScratch,
};
use rtlt_sta::{LevelScratch, Sta, StaConfig};
use rtlt_store::Store;
use rtlt_synth::{synthesize, SynthOptions};

fn src() -> String {
    rtlt_designgen::generate("b17").expect("catalog design")
}

fn bench_frontend(c: &mut Criterion) {
    let source = src();
    c.bench_function("parse_b17", |b| {
        b.iter(|| rtlt_verilog::parse(&source).expect("parses"))
    });
    c.bench_function("compile_b17", |b| {
        b.iter(|| rtlt_verilog::compile(&source, "b17").expect("compiles"))
    });
}

fn bench_bog(c: &mut Criterion) {
    let netlist = rtlt_verilog::compile(&src(), "b17").expect("compiles");
    c.bench_function("blast_b17", |b| b.iter(|| blast(&netlist)));
    let sog = blast(&netlist);
    c.bench_function("to_aig_b17", |b| b.iter(|| sog.to_variant(BogVariant::Aig)));
}

fn bench_sta(c: &mut Criterion) {
    let netlist = rtlt_verilog::compile(&src(), "b17").expect("compiles");
    let sog = blast(&netlist);
    let lib = Library::pseudo_bog();
    c.bench_function("pseudo_sta_b17", |b| {
        b.iter(|| Sta::run(&sog, &lib, StaConfig::default()))
    });
    c.bench_function("dataset_b17", |b| {
        b.iter(|| build_variant_data(&sog, &lib, 1.0, 7))
    });
}

fn bench_cone_kernel(c: &mut Criterion) {
    let netlist = rtlt_verilog::compile(&src(), "b17").expect("compiles");
    let sog = blast(&netlist);
    let lib = Library::pseudo_bog();
    let mut scratch = LevelScratch::new();
    c.bench_function("levelized_sta_b17", |b| {
        b.iter(|| Sta::run_levelized(&sog, &lib, StaConfig::default(), &mut scratch))
    });
    let mut group = c.benchmark_group("cone");
    group.sample_size(10);
    group.bench_function("cone_shard_dedup_b17", |b| {
        b.iter_batched(
            || (Store::in_memory(), FeaturizeScratch::new()),
            |(store, mut scratch)| {
                build_all_variant_data_scratch(&store, &sog, &lib, 1.0, 7, true, &mut scratch)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_synth(c: &mut Criterion) {
    let netlist =
        rtlt_verilog::compile(&rtlt_designgen::generate("b20").unwrap(), "b20").expect("compiles");
    let sog = blast(&netlist);
    let lib = Library::nangate45_like();
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);
    group.bench_function("synthesize_b20", |b| {
        b.iter(|| synthesize(&sog, &lib, &SynthOptions::default()))
    });
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let netlist = rtlt_verilog::compile(&src(), "b17").expect("compiles");
    let sog = blast(&netlist);
    let pseudo = Library::pseudo_bog();
    let data = build_variant_data(&sog, &pseudo, 1.0, 7);
    let labels: Vec<f64> = data.endpoint_sta_at.iter().map(|a| a * 0.8).collect();
    let mut group = c.benchmark_group("model");
    group.sample_size(10);
    group.bench_function("gbdt_maxloss_fit_b17", |b| {
        b.iter_batched(
            || BitwiseCorpus {
                designs: vec![(&data, labels.as_slice())],
            },
            |corpus| BitwiseModel::fit(BitModelKind::TreeMax, &corpus, 1),
            BatchSize::SmallInput,
        )
    });
    let corpus = BitwiseCorpus {
        designs: vec![(&data, labels.as_slice())],
    };
    let model = BitwiseModel::fit(BitModelKind::TreeMax, &corpus, 1);
    group.bench_function("gbdt_predict_b17", |b| {
        b.iter(|| model.predict_endpoints(&data))
    });

    // Raw model-stack micro-kernels over the same path rows: the flat SoA
    // batch inference kernel, and a single histogram tree grown with a
    // reused scratch histogram (the per-round unit of GBDT training).
    let nf = data.rows.first().map_or(1, |r| r.features.len());
    let mut fm = FeatureMatrix::new(nf);
    for r in &data.rows {
        fm.push_row(&r.features);
    }
    let y: Vec<f64> = data
        .rows
        .iter()
        .map(|r| data.endpoint_sta_at[r.endpoint])
        .collect();
    let gbdt = Gbdt::fit(
        &fm,
        &SquaredObjective { targets: y.clone() },
        &GbdtParams::default(),
    );
    group.bench_function("gbdt_predict_batch_b17", |b| {
        b.iter(|| gbdt.predict_all(&fm))
    });

    let binner = Binner::fit(&fm, 128);
    let codes = binner.codes(&fm);
    let grad: Vec<f64> = y.iter().map(|v| -v).collect();
    let hess = vec![1.0; y.len()];
    let all: Vec<usize> = (0..y.len()).collect();
    let mut scratch = TreeScratch::for_binner(&binner);
    group.bench_function("tree_fit_hist_b17", |b| {
        b.iter(|| {
            Tree::fit_with(
                &binner,
                &codes,
                &grad,
                &hess,
                &all,
                &TreeParams::default(),
                &mut scratch,
                1,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_bog,
    bench_sta,
    bench_cone_kernel,
    bench_synth,
    bench_model
);
criterion_main!(benches);
