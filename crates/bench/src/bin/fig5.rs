//! **Figure 5** — the b18_1 case study: (a) raw pseudo-STA of the four
//! representations vs ground truth, (b) bit-wise prediction accuracy,
//! (c) signal-wise prediction accuracy, (d) optimized arrival distribution.

use rtl_timer::metrics::pearson;
use rtl_timer::optimize::optimize_design_with;
use rtl_timer::pipeline::RtlTimer;
use rtlt_bench::{ascii_histogram, json::Json, positional_args, Bench};
use rtlt_liberty::Library;
use rtlt_synth::{synthesize, SynthOptions};

fn main() {
    let target = positional_args()
        .into_iter()
        .next()
        .unwrap_or_else(|| "b18_1".to_owned());
    let bench = Bench::from_env();
    let set = bench.prepare_suite();
    let cfg = bench.cfg.clone();
    let (train, test) = set.split(&[target.as_str()]);
    eprintln!("[fig5] training on {} designs ...", train.len());
    let model = RtlTimer::fit_with(&bench.store, &train, &cfg);
    let d = test[0];
    let pred = model.predict(d);

    println!("\nFig. 5 — design {target}\n");

    // (a) Raw pseudo-STA per representation vs ground truth.
    println!("(a) RTL-STA: raw pseudo-STA arrival vs post-synthesis label (R per variant)");
    let labels: &[f64] = &d.labels_at;
    for (v, name) in ["SOG", "AIG", "AIMG", "XAG"].iter().enumerate() {
        let at = &d.variant_data[v].endpoint_sta_at;
        println!("    {name:<5} R = {:+.3}", pearson(at, labels));
    }

    // (b) Bit-wise predictions.
    println!(
        "\n(b) bit-wise prediction (ensemble 'En'): R = {:.3}, MAPE = {:.1}%, COVR = {:.1}%",
        pred.bit_r(),
        pred.bit_mape(),
        pred.bit_covr()
    );
    for v in 0..4 {
        println!("    variant {v} R = {:.3}", pred.variant_bit_r(v));
    }

    // (c) Signal-wise predictions.
    println!(
        "\n(c) signal-wise prediction: R = {:.3}, MAPE = {:.1}%, COVR(reg) = {:.1}%, COVR(LTR) = {:.1}%",
        pred.signal_r(),
        pred.signal_mape(),
        pred.signal_covr_regression(),
        pred.signal_covr_ranking()
    );

    // (d) Optimized arrival distribution.
    eprintln!("[fig5] optimization flows ...");
    let outcome = optimize_design_with(d, &pred, &bench.store);
    let lib = Library::nangate45_like();
    let opt = synthesize(
        &d.sog,
        &lib,
        &SynthOptions {
            seed: d.synth_seed,
            clock_period: Some(d.clock),
            effort: 1.45,
            path_groups: Some(rtl_timer::optimize::path_groups_from_scores(&pred.bit_pred)),
            retime_endpoints: rtl_timer::optimize::retime_set_from_scores(&pred.bit_pred),
        },
    );
    println!("\n(d) arrival-time distribution before/after prediction-guided optimization");
    let base: Vec<f64> = labels.iter().cloned().filter(|a| a.is_finite()).collect();
    let after: Vec<f64> = opt
        .endpoint_at
        .iter()
        .cloned()
        .filter(|a| a.is_finite())
        .collect();
    println!(
        "--- default (WNS {:.3}, TNS {:.1}):",
        outcome.default.wns, outcome.default.tns
    );
    println!("{}", ascii_histogram(&base, 12, 46));
    println!(
        "--- optimized w. pred (WNS {:.3}, TNS {:.1}):",
        outcome.with_pred.wns, outcome.with_pred.tns
    );
    println!("{}", ascii_histogram(&after, 12, 46));

    bench.write_report(
        "fig5",
        vec![
            ("design", Json::Str(target.clone())),
            ("bit_r", Json::Num(pred.bit_r())),
            ("bit_mape_pct", Json::Num(pred.bit_mape())),
            ("signal_r", Json::Num(pred.signal_r())),
            ("signal_covr_ltr_pct", Json::Num(pred.signal_covr_ranking())),
            ("default_wns", Json::Num(outcome.default.wns)),
            ("default_tns", Json::Num(outcome.default.tns)),
            ("optimized_wns", Json::Num(outcome.with_pred.wns)),
            ("optimized_tns", Json::Num(outcome.with_pred.tns)),
        ],
    );
}
