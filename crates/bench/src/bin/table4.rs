//! **Table 4** — modeling accuracy comparison and ablation study:
//! bit-wise models (tree/MLP ± path sampling, transformer, customized GNN,
//! RTL-Timer ensemble), signal-wise models (± bit-wise detail, LTR), and
//! overall WNS/TNS versus the reimplemented SOTA baselines.

use rtl_timer::baselines::{AstStyle, GnnBaseline, MasterRtlStyle, SignalDirect, SnsStyle};
use rtl_timer::bitwise::{BitModelKind, BitwiseCorpus, BitwiseModel};
use rtl_timer::metrics::{covr, mape, mean, pearson, r_squared};
use rtl_timer::pipeline::{cross_validate_with, DesignData};
use rtlt_bench::{f2, folds, json::Json, pct, Bench, Table};

fn finite(pred: &[f64], label: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut p = Vec::new();
    let mut l = Vec::new();
    for (&a, &b) in pred.iter().zip(label) {
        if a.is_finite() && b.is_finite() {
            p.push(a);
            l.push(b);
        }
    }
    (p, l)
}

/// Per-design metric accumulator.
#[derive(Default)]
struct Acc {
    r: Vec<f64>,
    mape: Vec<f64>,
    covr: Vec<f64>,
}

impl Acc {
    fn push(&mut self, pred: &[f64], label: &[f64]) {
        let (p, l) = finite(pred, label);
        if p.len() < 4 {
            return;
        }
        self.r.push(pearson(&p, &l));
        self.mape.push(mape(&p, &l));
        self.covr.push(covr(&p, &l));
    }

    fn row(&self, name: &str) -> Vec<String> {
        vec![
            name.to_owned(),
            f2(mean(&self.r)),
            pct(mean(&self.mape)),
            pct(mean(&self.covr)),
        ]
    }
}

fn main() {
    let bench = Bench::from_env();
    let set = bench.prepare_suite();
    let cfg = bench.cfg.clone();
    let k = folds();
    eprintln!("[table4] {k}-fold cross-validation (RTL-Timer full stack) ...");
    let preds = cross_validate_with(&set, k, &cfg, &bench.store);

    // ---- Bit-wise section (CV ablations on the SOG representation). ----
    eprintln!("[table4] bit-wise ablations ...");
    let mut abl: Vec<(&str, BitModelKind)> = vec![
        ("Tree-based w/o sample", BitModelKind::TreeCritOnly),
        ("MLP", BitModelKind::MlpMax),
        ("MLP w/o sample", BitModelKind::MlpCritOnly),
        ("Transformer", BitModelKind::Transformer),
    ];
    if rtlt_bench::fast() {
        abl.truncate(1);
    }
    let mut abl_acc: Vec<Acc> = abl.iter().map(|_| Acc::default()).collect();
    let mut gnn_acc = Acc::default();
    let fold_names = set.folds(k);
    for fold in &fold_names {
        let names: Vec<&str> = fold.iter().map(|s| &**s).collect();
        let (train, test) = set.split(&names);
        if test.is_empty() {
            continue;
        }
        for (ai, (_, kind)) in abl.iter().enumerate() {
            let corpus = BitwiseCorpus {
                designs: train
                    .iter()
                    .map(|d| (&d.variant_data[0], &d.labels_at[..]))
                    .collect(),
            };
            let model = BitwiseModel::fit(*kind, &corpus, cfg.seed);
            for d in &test {
                let p = model.predict_endpoints(&d.variant_data[0]);
                abl_acc[ai].push(&p, &d.labels_at);
            }
        }
        // Customized GNN baseline.
        let gnn = GnnBaseline::fit(&train, cfg.seed);
        for d in &test {
            let (p, l) = gnn.predict(d);
            gnn_acc.push(&p, &l);
        }
    }
    let mut bit_rtl = Acc::default();
    for p in &preds {
        bit_rtl.push(&p.bit_pred, &p.bit_label);
    }

    println!("\nTable 4 — bit-wise endpoint modeling (avg over CV test designs)\n");
    let mut t = Table::new(&["method", "R", "MAPE %", "COVR %"]);
    for (ai, (name, _)) in abl.iter().enumerate() {
        t.row(abl_acc[ai].row(name));
    }
    t.row(gnn_acc.row("Customized GNN"));
    t.row(bit_rtl.row("RTL-Timer (tree + sample + ensemble)"));
    t.print();
    println!("paper: tree w/o sample 0.80/26/59, MLP 0.71/35/56, MLP w/o 0.65/38/54,");
    println!("       transformer 0.73/35/57, GNN 0.25/53/46, RTL-Timer 0.88/12/66\n");

    // ---- Signal-wise section. ----
    eprintln!("[table4] signal-wise ablations ...");
    let mut sig_direct_reg = Acc::default();
    let mut sig_direct_rank_covr: Vec<f64> = Vec::new();
    for fold in &fold_names {
        let names: Vec<&str> = fold.iter().map(|s| &**s).collect();
        let (train, test) = set.split(&names);
        if test.is_empty() {
            continue;
        }
        let direct = SignalDirect::fit(&train, cfg.seed);
        for d in &test {
            let labels = d.signal_labels();
            let (reg, rank) = direct.predict(d);
            sig_direct_reg.push(&reg, &labels);
            let (rs, ls) = finite(&rank, &labels);
            if rs.len() >= 4 {
                sig_direct_rank_covr.push(covr(&rs, &ls));
            }
        }
    }
    let mut sig_reg = Acc::default();
    let mut covr_wo_ltr = Vec::new();
    let mut covr_ltr = Vec::new();
    for p in &preds {
        sig_reg.push(&p.signal_pred, &p.signal_label);
        covr_wo_ltr.push(p.signal_covr_regression());
        covr_ltr.push(p.signal_covr_ranking());
    }

    println!("\nTable 4 — signal-wise endpoint modeling\n");
    let mut t = Table::new(&["method", "R", "MAPE %", "COVR %"]);
    t.row(sig_direct_reg.row("Regression w/o bit-wise"));
    t.row(vec![
        "Ranking w/o bit-wise".into(),
        "/".into(),
        "/".into(),
        pct(mean(&sig_direct_rank_covr)),
    ]);
    let mut r = sig_reg.row("RTL-Timer (regression)");
    r[3] = pct(mean(&covr_wo_ltr));
    t.row(r);
    t.row(vec![
        "RTL-Timer (ranking, LTR)".into(),
        "/".into(),
        "/".into(),
        pct(mean(&covr_ltr)),
    ]);
    t.print();
    println!("paper: regr w/o bit-wise 0.56/28/56, rank w/o bit-wise COVR 39,");
    println!("       RTL-Timer regression 0.89/15/71, RTL-Timer ranking COVR 80\n");

    // ---- Overall WNS/TNS section. ----
    eprintln!("[table4] overall WNS/TNS baselines ...");
    let mut rows_wns: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut rows_tns: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut sns_p = Vec::new();
    let mut master_w = Vec::new();
    let mut master_t = Vec::new();
    let mut ast_t = Vec::new();
    let mut ast_w = Vec::new();
    let mut label_w = Vec::new();
    let mut label_t = Vec::new();
    let mut ordered_designs: Vec<&DesignData> = Vec::new();
    for fold in &fold_names {
        let names: Vec<&str> = fold.iter().map(|s| &**s).collect();
        let (train, test) = set.split(&names);
        if test.is_empty() {
            continue;
        }
        let sns = SnsStyle::fit(&train, cfg.seed);
        let master = MasterRtlStyle::fit(&train, cfg.seed);
        let ast = AstStyle::fit(&train, cfg.seed);
        for d in &test {
            sns_p.push(sns.predict_wns(d));
            let (w, t2) = master.predict(d);
            master_w.push(w);
            master_t.push(t2);
            let (aw, at) = ast.predict(d);
            ast_w.push(aw);
            ast_t.push(at);
            label_w.push(d.wns);
            label_t.push(d.tns);
            ordered_designs.push(d);
        }
    }
    // RTL-Timer WNS/TNS aligned with the same design order.
    let mut rtl_w = Vec::new();
    let mut rtl_t = Vec::new();
    for d in &ordered_designs {
        let p = preds
            .iter()
            .find(|p| p.design == d.name)
            .expect("CV prediction");
        rtl_w.push(p.wns_pred);
        rtl_t.push(p.tns_pred);
    }
    rows_wns.push(("SNS-style", sns_p));
    rows_wns.push(("MasterRTL-style", master_w));
    rows_wns.push(("ICCAD'22-style", ast_w));
    rows_wns.push(("RTL-Timer", rtl_w));
    rows_tns.push(("ICCAD'22-style", ast_t));
    rows_tns.push(("MasterRTL-style", master_t));
    rows_tns.push(("RTL-Timer", rtl_t));

    println!(
        "\nTable 4 — overall design timing (cross-design, {} designs)\n",
        label_w.len()
    );
    let mut t = Table::new(&["target", "method", "R", "R2", "MAPE %"]);
    for (name, p) in &rows_wns {
        t.row(vec![
            "WNS".into(),
            (*name).to_owned(),
            f2(pearson(p, &label_w)),
            f2(r_squared(p, &label_w)),
            pct(mape(p, &label_w)),
        ]);
    }
    for (name, p) in &rows_tns {
        t.row(vec![
            "TNS".into(),
            (*name).to_owned(),
            f2(pearson(p, &label_t)),
            f2(r_squared(p, &label_t)),
            pct(mape(p, &label_t)),
        ]);
    }
    t.print();
    println!("paper: WNS — SNS 0.73/0.58/33, MasterRTL 0.89/0.74/15, RTL-Timer 0.91/0.86/12");
    println!("       TNS — ICCAD'22 0.65/0.32/42, MasterRTL 0.96/0.94/34, RTL-Timer 0.98/0.97/18");

    let rtl_wns = &rows_wns.last().expect("RTL-Timer row").1;
    let rtl_tns = &rows_tns.last().expect("RTL-Timer row").1;
    bench.write_report(
        "table4",
        vec![
            ("folds", Json::UInt(k as u64)),
            ("bit_r_avg", Json::Num(mean(&bit_rtl.r))),
            ("bit_mape_pct_avg", Json::Num(mean(&bit_rtl.mape))),
            ("bit_covr_pct_avg", Json::Num(mean(&bit_rtl.covr))),
            ("signal_r_avg", Json::Num(mean(&sig_reg.r))),
            ("signal_covr_ltr_pct_avg", Json::Num(mean(&covr_ltr))),
            ("wns_r", Json::Num(pearson(rtl_wns, &label_w))),
            ("tns_r", Json::Num(pearson(rtl_tns, &label_t))),
        ],
    );
}
