//! Quick accuracy probe: leave-3-out on the suite, print headline metrics.
//! Not a paper table — a development aid.

use rtl_timer::pipeline::RtlTimer;
use rtlt_bench::{json::Json, Bench};
use std::time::Instant;

fn main() {
    let bench = Bench::from_env();
    let set = bench.prepare_suite();
    let cfg = bench.cfg.clone();
    let test_names = ["b18_1", "Vex_3", "conmax"];
    let (train, test) = set.split(&test_names);
    eprintln!("[probe] training on {} designs ...", train.len());
    let t = Instant::now();
    let model = RtlTimer::fit_with(&bench.store, &train, &cfg);
    let fit_seconds = t.elapsed().as_secs_f64();
    eprintln!("[probe] fit in {fit_seconds:.1}s");
    let mut per_design = Vec::new();
    for d in test {
        let t = Instant::now();
        let p = model.predict(d);
        println!(
            "{:10} bitR={:.3} bitMAPE={:5.1} bitCOVR={:5.1} | sigR={:.3} sigMAPE={:5.1} covr_reg={:5.1} covr_ltr={:5.1} | wns {:.3}/{:.3} tns {:.1}/{:.1} ({}ms)",
            d.name,
            p.bit_r(),
            p.bit_mape(),
            p.bit_covr(),
            p.signal_r(),
            p.signal_mape(),
            p.signal_covr_regression(),
            p.signal_covr_ranking(),
            p.wns_pred,
            p.wns_label,
            p.tns_pred,
            p.tns_label,
            t.elapsed().as_millis(),
        );
        // Per-variant bit R.
        let vr: Vec<String> = (0..4)
            .map(|v| format!("{:.3}", p.variant_bit_r(v)))
            .collect();
        println!(
            "           variants SOG/AIG/AIMG/XAG R = {}",
            vr.join(" / ")
        );
        per_design.push(Json::obj([
            ("design", Json::Str(d.name.to_string())),
            ("bit_r", Json::Num(p.bit_r())),
            ("signal_r", Json::Num(p.signal_r())),
            ("signal_covr_ltr_pct", Json::Num(p.signal_covr_ranking())),
        ]));
    }
    bench.write_report(
        "probe",
        vec![
            ("fit_seconds", Json::Num(fit_seconds)),
            ("designs", Json::Arr(per_design)),
        ],
    );
}
