//! **Figure 4** — effect of the optimization options on the endpoint
//! arrival-time distribution: default synthesis vs `group_path` vs `retime`
//! vs both (conceptual figure rendered as ASCII histograms).

use rtl_timer::metrics::rank_groups;
use rtl_timer::optimize::{path_groups_from_scores, retime_set_from_scores};
use rtl_timer::pipeline::PrepareStages;
use rtlt_bench::{ascii_histogram, json::Json, positional_args, Bench};
use rtlt_liberty::Library;
use rtlt_synth::{synthesize, SynthOptions};

fn main() {
    let name = positional_args()
        .into_iter()
        .next()
        .unwrap_or_else(|| "b18_1".to_owned());
    let bench = Bench::from_env();
    let cfg = bench.cfg.clone();
    let src = rtlt_designgen::generate(&name).expect("catalog design");
    // Frontend artifacts come from the shared store (compile + blast
    // namespaces), like every other bench binary.
    let blasted = PrepareStages::new(&cfg)
        .blasted_with(&bench.store, &name, &src)
        .expect("compiles");
    let sog = &blasted.sog;
    let lib = Library::nangate45_like();

    eprintln!("[fig4] default flow ...");
    let seed = cfg.seed ^ 0xF16;
    let default = synthesize(
        sog,
        &lib,
        &SynthOptions {
            seed,
            ..Default::default()
        },
    );
    let clock = default.clock_period;
    // Ground-truth ranking drives the option experiments (the figure is
    // about the options, not the predictor).
    let scores = default.endpoint_at.clone();
    let groups = path_groups_from_scores(&scores);
    let retime = retime_set_from_scores(&scores);

    let run = |pg: bool, rt: bool| {
        synthesize(
            sog,
            &lib,
            &SynthOptions {
                seed,
                clock_period: Some(clock),
                effort: 1.45,
                path_groups: pg.then(|| groups.clone()),
                retime_endpoints: if rt { retime.clone() } else { Vec::new() },
            },
        )
    };
    eprintln!("[fig4] w.group / w.retime / w.both flows ...");
    let w_group = run(true, false);
    let w_retime = run(false, true);
    let w_both = run(true, true);

    println!("\nFig. 4 — endpoint arrival distribution, design {name} @ clock {clock:.3}ns\n");
    for (label, res) in [
        ("default tool", &default),
        ("w. group", &w_group),
        ("w. retime", &w_retime),
        ("w. retime + group", &w_both),
    ] {
        let ats: Vec<f64> = res
            .endpoint_at
            .iter()
            .cloned()
            .filter(|a| a.is_finite())
            .collect();
        println!(
            "--- {label}: WNS {:.3} TNS {:.1} (max AT {:.3})",
            res.wns,
            res.tns,
            ats.iter().cloned().fold(f64::MIN, f64::max)
        );
        println!("{}", ascii_histogram(&ats, 12, 46));
    }
    let g = rank_groups(&scores);
    println!(
        "group sizes (g1..g4): {} / {} / {} / {}",
        g.iter().filter(|&&x| x == 0).count(),
        g.iter().filter(|&&x| x == 1).count(),
        g.iter().filter(|&&x| x == 2).count(),
        g.iter().filter(|&&x| x == 3).count()
    );

    let flow = |r: &rtlt_synth::SynthResult| {
        Json::obj([("wns", Json::Num(r.wns)), ("tns", Json::Num(r.tns))])
    };
    bench.write_report(
        "fig4",
        vec![
            ("design", Json::Str(name.clone())),
            ("clock_ns", Json::Num(clock)),
            (
                "flows",
                Json::obj([
                    ("default", flow(&default)),
                    ("w_group", flow(&w_group)),
                    ("w_retime", flow(&w_retime)),
                    ("w_both", flow(&w_both)),
                ]),
            ),
        ],
    );
}
