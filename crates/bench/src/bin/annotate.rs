//! **Incremental annotation demo** — the paper's early-optimization loop
//! (§3.5.1, Fig. 3) end to end: prepare a hierarchical multi-module design,
//! train (or reuse) a model, open an [`IncrementalAnnotator`] session, edit
//! one lane module, and re-annotate.
//!
//! Asserts (and reports in `BENCH_annotate.json` under `incremental`) the
//! architecture's contract:
//!
//! 1. editing one module recomputes only the featurize shards of the cones
//!    it feeds (per-namespace store stats),
//! 2. the warm incremental re-annotation is an order of magnitude faster
//!    than a cold full prepare of the same edited design, and
//! 3. the annotated output is byte-identical to a cold recompute.
//!
//! With `--selfcheck` the process exits non-zero when any of the structural
//! invariants (1) or (3) fail — the CI smoke job runs exactly that.
//!
//! Two extra modes turn the same loop into the live annotation service
//! (`rtlt-annotated`, see `docs/sessions.md`):
//!
//! - `--serve [--addr=HOST:PORT]` prepares the suite, trains the model,
//!   and serves OPEN/EDIT/ANNOTATE sessions for the base design on one
//!   single-threaded event loop (prints a `listening on` line when ready);
//! - `--connect=ADDR` drives the same edit through a [`LiveAnnotator`]
//!   session against that service, asserting byte-identity with the local
//!   incremental loop and reporting the per-edit round trips — and
//!   degrading to local recompute (same bytes) when the server is gone.

use rtl_timer::incremental::IncrementalAnnotator;
use rtl_timer::live::{self, LiveAnnotator, LiveService};
use rtl_timer::pipeline::{DesignSet, PrepareStages, RtlTimer};
use rtlt_bench::{json::Json, positional_args, Bench};
use rtlt_designgen::hier;
use rtlt_store::Store;
use std::time::Instant;

const TOP: &str = "hier_soc";
const WIDTH: u32 = 32;
const DEPTH: u32 = 3;

fn main() {
    let bench = Bench::from_env();
    let cfg = bench.cfg.clone();
    let args = positional_args();
    let selfcheck = args.iter().any(|a| a == "--selfcheck");
    let serve = args.iter().any(|a| a == "--serve");
    let listen_addr = args
        .iter()
        .find_map(|a| a.strip_prefix("--addr="))
        .unwrap_or("127.0.0.1:7463")
        .to_owned();
    let connect = args
        .iter()
        .find_map(|a| a.strip_prefix("--connect="))
        .map(str::to_owned);
    let lanes: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--lanes="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let trainers = if rtlt_bench::fast() { 2 } else { 4 };

    // Base design + a few sibling designs to train on.
    let base = hier::soc(TOP, lanes, WIDTH, DEPTH);
    let mut sources = vec![(TOP.to_owned(), base.clone())];
    for i in 0..trainers {
        let name = format!("soc_trainer{i}");
        sources.push((name.clone(), hier::soc(&name, lanes, WIDTH, DEPTH)));
    }
    eprintln!(
        "[annotate] preparing {} designs ({lanes} lanes each) ...",
        sources.len()
    );
    let t = Instant::now();
    let set = DesignSet::prepare_named_with(&sources, &cfg, &bench.store).expect("valid sources");
    eprintln!("[annotate] prepared in {:.2}s", t.elapsed().as_secs_f64());
    let (train, test) = set.split(&[TOP]);
    let model = RtlTimer::fit_with(&bench.store, &train, &cfg);
    let base_d = test[0];
    let t = Instant::now();
    let _ = model.predict(base_d);
    let predict_s = t.elapsed().as_secs_f64();
    eprintln!("[annotate] one full-design inference: {predict_s:.3}s");

    if serve {
        // Live annotation service: the suite's warm store and trained
        // model move into the event loop; sessions open against the base
        // design. Blocks until killed.
        let svc = LiveService::new(
            model,
            bench.store,
            &[base_d],
            &cfg,
            live::DEFAULT_STEP_SHARDS,
        );
        let listener = std::net::TcpListener::bind(&listen_addr).expect("bind live service");
        let bound = listener.local_addr().expect("local addr");
        println!("rtlt-annotated listening on {bound} (design {TOP}, {lanes} lanes)");
        let stop = std::sync::atomic::AtomicBool::new(false);
        live::serve_until(listener, svc, &stop);
        return;
    }
    if let Some(addr) = connect {
        live_connect(&bench, &model, base_d, &base, lanes, &addr, selfcheck);
        return;
    }

    // Session: pin the baseline clock, annotate the unedited source once.
    let mut annotator = IncrementalAnnotator::new(base_d, &cfg);
    let out0 = annotator
        .reannotate(&base, &model, &bench.store)
        .expect("baseline pass");
    println!(
        "baseline annotation @ clock {:.3}ns: {} shards, {} warm",
        annotator.clock(),
        out0.total_shards,
        out0.reused_shards
    );

    // The edit: one lane's first pipeline stage changes.
    let edited_lane = lanes / 2;
    let edited = hier::edit_lane(&base, edited_lane).expect("lane edit");
    let t = Instant::now();
    let warm = annotator
        .reannotate(&edited, &model, &bench.store)
        .expect("incremental pass");
    let warm_s = t.elapsed().as_secs_f64();
    println!(
        "edit lane{edited_lane}: dirty modules {:?}, {} / {} shards recomputed in {:.3}s",
        warm.dirty_modules, warm.dirty_shards, warm.total_shards, warm_s
    );

    // Reference 1: a cold full prepare of the edited design (fresh store —
    // compile, blast, label synthesis, every shard).
    let t = Instant::now();
    let _cold_prep = PrepareStages::new(&cfg)
        .run_with(&Store::in_memory(), TOP, &edited)
        .expect("cold prepare");
    let cold_prepare_s = t.elapsed().as_secs_f64();
    let speedup = cold_prepare_s / warm_s.max(1e-9);
    println!(
        "cold full prepare of the edited design: {cold_prepare_s:.3}s → incremental speedup {speedup:.1}x"
    );

    // Reference 2: the same re-annotation against a cold store must be
    // byte-identical (incrementality changes reuse, never results).
    let mut cold_session = IncrementalAnnotator::new(base_d, &cfg);
    let cold = cold_session
        .reannotate(&edited, &model, &Store::in_memory())
        .expect("cold pass");
    let byte_identical = cold.annotated == warm.annotated;
    println!(
        "cold vs warm annotation: {}",
        if byte_identical {
            "byte-identical"
        } else {
            "MISMATCH"
        }
    );

    // A taste of the output.
    println!("\nannotated head:");
    for line in warm.annotated.lines().take(6) {
        println!("  {line}");
    }

    // Structural expectations. The provenance bound covers the edited
    // lane's DEPTH pipeline signals plus the top accumulator (it reads
    // every lane); the content keys refine that to the one cone the edit
    // actually reached (stage 0 of the edited lane), one shard per
    // representation.
    let expected_bound = DEPTH as usize + 1;
    let checks = [
        ("baseline pass fully warm", out0.dirty_shards == 0),
        (
            "edit recomputes only the changed cone",
            warm.dirty_shards == 4,
        ),
        (
            "recomputation within the provenance bound",
            warm.dirty_cone_bound.len() == expected_bound
                && warm.dirty_shards <= 4 * warm.dirty_cone_bound.len() as u64,
        ),
        (
            "dirty modules = the edited lane",
            warm.dirty_modules == vec![hier::lane_name(edited_lane)],
        ),
        ("byte-identical to cold recompute", byte_identical),
    ];
    let mut failed = false;
    for (what, ok) in checks {
        println!("check: {what}: {}", if ok { "ok" } else { "FAIL" });
        failed |= !ok;
    }

    bench.write_report(
        "annotate",
        vec![(
            "incremental",
            Json::obj([
                ("lanes", Json::UInt(lanes as u64)),
                ("edited_lane", Json::UInt(edited_lane as u64)),
                ("total_shards", Json::UInt(warm.total_shards)),
                ("dirty_shards", Json::UInt(warm.dirty_shards)),
                ("reused_shards", Json::UInt(warm.reused_shards)),
                (
                    "dirty_cone_bound",
                    Json::UInt(warm.dirty_cone_bound.len() as u64),
                ),
                (
                    "dirty_modules",
                    Json::Arr(
                        warm.dirty_modules
                            .iter()
                            .map(|m| Json::Str(m.clone()))
                            .collect(),
                    ),
                ),
                ("reannotate_seconds", Json::Num(warm_s)),
                ("cold_prepare_seconds", Json::Num(cold_prepare_s)),
                ("speedup", Json::Num(speedup)),
                ("byte_identical", Json::Bool(byte_identical)),
                ("clock_ns", Json::Num(annotator.clock())),
            ]),
        )],
    );

    if selfcheck && failed {
        eprintln!("[annotate] selfcheck FAILED");
        std::process::exit(1);
    }
}

/// `--connect=ADDR`: drive one scripted edit through a live session and
/// report timing, round trips, and byte-identity with the local loop.
///
/// Works unchanged when the server is unreachable or refuses sessions —
/// the [`LiveAnnotator`] degrades to local recompute, `used_remote` flips
/// to false in the report, and the byte-identity check still holds.
#[allow(clippy::too_many_arguments)]
fn live_connect(
    bench: &Bench,
    model: &RtlTimer,
    base_d: &rtl_timer::DesignData,
    base: &str,
    lanes: usize,
    addr: &str,
    selfcheck: bool,
) {
    let cfg = bench.cfg.clone();
    let mut session = LiveAnnotator::with_remote(base_d, &cfg, addr);
    let t = Instant::now();
    let out0 = session
        .reannotate(base, model, &bench.store)
        .expect("baseline pass");
    eprintln!(
        "[annotate] session open + baseline annotation: {:.3}s ({})",
        t.elapsed().as_secs_f64(),
        if out0.remote {
            "remote"
        } else {
            "local fallback"
        }
    );

    // The scripted edit: one lane's first pipeline stage changes. Warm
    // EDIT→ANNOTATE is what the designer's save-to-slack latency is.
    let edited_lane = lanes / 2;
    let edited = hier::edit_lane(base, edited_lane).expect("lane edit");
    let t = Instant::now();
    let warm = session
        .reannotate(&edited, model, &bench.store)
        .expect("edit pass");
    let warm_s = t.elapsed().as_secs_f64();
    println!(
        "edit lane{edited_lane} via {}: dirty modules {:?}, {} / {} shards in {:.3}s, {} round trip(s)",
        if warm.remote {
            "live session"
        } else {
            "local fallback"
        },
        warm.dirty_modules,
        warm.dirty_shards,
        warm.total_shards,
        warm_s,
        warm.round_trips
    );

    // Reference 1: a cold full prepare of the edited design — the smoke
    // lane gates warm session latency at a fraction of this.
    let t = Instant::now();
    let _ = PrepareStages::new(&cfg)
        .run_with(&Store::in_memory(), TOP, &edited)
        .expect("cold prepare");
    let cold_prepare_s = t.elapsed().as_secs_f64();
    let warm_over_cold = warm_s / cold_prepare_s.max(1e-9);
    println!(
        "cold full prepare: {cold_prepare_s:.3}s → warm session edit at {:.1}% of cold",
        warm_over_cold * 100.0
    );

    // Reference 2: a local twin replaying both revisions — the session's
    // output must be byte-identical to it, remote or degraded alike.
    let mut twin = IncrementalAnnotator::new(base_d, &cfg);
    let twin0 = twin
        .reannotate(base, model, &bench.store)
        .expect("twin baseline");
    let twin1 = twin
        .reannotate(&edited, model, &bench.store)
        .expect("twin edit");
    let byte_identical = out0.annotated == twin0.annotated && warm.annotated == twin1.annotated;

    // Round-trip accounting: the session client charges one turnaround
    // per edit to the store's `session` namespace, so the shared stats
    // table below reports it alongside the artifact tiers.
    let session_turns = bench.store.stats().namespace(live::SESSION_NS).round_trips;
    println!(
        "session round trips: {session_turns} total this process, {} for the timed edit",
        warm.round_trips
    );
    bench.print_store_stats();

    let checks = [
        (
            "session annotation byte-identical to local loop",
            byte_identical,
        ),
        (
            "shard accounting agrees with the local loop",
            warm.total_shards == twin1.total_shards,
        ),
    ];
    let mut failed = false;
    for (what, ok) in checks {
        println!("check: {what}: {}", if ok { "ok" } else { "FAIL" });
        failed |= !ok;
    }

    bench.write_report(
        "annotate",
        vec![(
            "live",
            Json::obj([
                ("addr", Json::Str(addr.to_owned())),
                ("used_remote", Json::Bool(warm.remote)),
                ("live_round_trips", Json::UInt(warm.round_trips)),
                ("session_round_trips", Json::UInt(session_turns)),
                ("warm_edit_seconds", Json::Num(warm_s)),
                ("cold_prepare_seconds", Json::Num(cold_prepare_s)),
                ("warm_over_cold", Json::Num(warm_over_cold)),
                ("byte_identical", Json::Bool(byte_identical)),
                ("dirty_shards", Json::UInt(warm.dirty_shards)),
                ("total_shards", Json::UInt(warm.total_shards)),
            ]),
        )],
    );

    if selfcheck && failed {
        eprintln!("[annotate] live selfcheck FAILED");
        std::process::exit(1);
    }
}
