//! **Table 5** — the four BOG representation variants vs the ensemble:
//! bit-wise and signal-wise accuracy (mean and standard deviation across
//! designs), showing the variance reduction from ensemble learning.

use rtl_timer::metrics::{covr, mean, pearson, std_dev};
use rtl_timer::pipeline::cross_validate_with;
use rtl_timer::signal::signal_labels;
use rtlt_bench::{f2, folds, json::Json, pct, Bench, Table};

fn main() {
    let bench = Bench::from_env();
    let set = bench.prepare_suite();
    let cfg = bench.cfg.clone();
    let k = folds();
    eprintln!("[table5] {k}-fold cross-validation ...");
    let preds = cross_validate_with(&set, k, &cfg, &bench.store);

    let variant_names = ["SOG", "AIG", "AIMG", "XAG"];
    // Bit-wise per variant + ensemble.
    let mut bit_r: Vec<Vec<f64>> = vec![Vec::new(); 5];
    // Signal-wise per variant + ensemble.
    let mut sig_r: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut sig_covr: Vec<Vec<f64>> = vec![Vec::new(); 5];

    for p in &preds {
        let d = set.get(&p.design).expect("design");
        let labels = &p.bit_label;
        let slabels = signal_labels(labels, d.signals());
        for v in 0..4 {
            bit_r[v].push(p.variant_bit_r(v));
            // Signal-wise from this variant's bit predictions alone.
            let s_pred = signal_labels(&p.variant_bit_preds[v], d.signals());
            let pairs: (Vec<f64>, Vec<f64>) = s_pred
                .iter()
                .zip(&slabels)
                .filter(|(a, b)| a.is_finite() && b.is_finite())
                .map(|(&a, &b)| (a, b))
                .unzip();
            sig_r[v].push(pearson(&pairs.0, &pairs.1));
            sig_covr[v].push(covr(&pairs.0, &pairs.1));
        }
        bit_r[4].push(p.bit_r());
        sig_r[4].push(p.signal_r());
        sig_covr[4].push(p.signal_covr_ranking());
    }

    println!("\nTable 5 — representation variants vs ensemble\n");
    let mut t = Table::new(&["metric", "SOG", "AIG", "AIMG", "XAG", "Ensemble"]);
    let fmt_row = |name: &str, data: &[Vec<f64>], f: &dyn Fn(&[f64]) -> f64, d2: bool| {
        let mut row = vec![name.to_owned()];
        for col in data {
            row.push(if d2 { f2(f(col)) } else { pct(f(col)) });
        }
        row
    };
    t.row(fmt_row("bit-wise avg R", &bit_r, &mean, true));
    t.row(fmt_row("bit-wise std R", &bit_r, &std_dev, true));
    t.row(fmt_row("signal-wise avg R", &sig_r, &mean, true));
    t.row(fmt_row("signal-wise std R", &sig_r, &std_dev, true));
    t.row(fmt_row("signal-wise avg COVR", &sig_covr, &mean, false));
    t.row(fmt_row("signal-wise std COVR", &sig_covr, &std_dev, false));
    t.print();
    println!("\npaper: bit-wise avg R 0.85/0.75/0.76/0.77 → ensemble 0.88 (std 0.18..0.26 → 0.08)");
    println!("       signal avg R 0.82/0.81/0.84/0.80 → 0.89; COVR 65/71/72/71 → 80");

    let cols = variant_names.iter().copied().chain(["Ensemble"]);
    bench.write_report(
        "table5",
        vec![(
            "bit_r_avg",
            Json::Obj(
                cols.zip(&bit_r)
                    .map(|(name, col)| (name.to_owned(), Json::Num(mean(col))))
                    .collect(),
            ),
        )],
    );
}
