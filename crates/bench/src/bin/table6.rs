//! **Table 6** — optimization enabled by predictions and labels: per-design
//! ΔWNS/ΔTNS/ΔPower/ΔArea (%) of the `group_path` + `retime` flow driven by
//! predicted vs ground-truth rankings, with the paper's Avg1/Avg2 rows.

use rtl_timer::metrics::mean;
use rtl_timer::optimize::{optimize_design_with, FlowMetrics, OptimizationOutcome};
use rtl_timer::pipeline::cross_validate_with;
use rtlt_bench::{f2, folds, json::Json, Bench, Table};

fn main() {
    let bench = Bench::from_env();
    let set = bench.prepare_suite();
    let cfg = bench.cfg.clone();
    let k = folds();
    eprintln!("[table6] {k}-fold cross-validation for rankings ...");
    let preds = cross_validate_with(&set, k, &cfg, &bench.store);

    eprintln!("[table6] running optimization flows per design ...");
    // Candidate flows share the bench store: identical candidates are
    // deduplicated within this run, and a warm disk cache skips the
    // synthesis entirely.
    let store = &bench.store;
    let outcomes: Vec<(OptimizationOutcome, f64, f64)> =
        rtlt_runtime::par_map(cfg.threads, &preds, |p| {
            let d = set.get(&p.design).expect("design");
            let o = optimize_design_with(d, p, store);
            (o, p.signal_r(), p.signal_covr_ranking())
        });

    println!("\nTable 6 — optimization enabled by predictions and labels (Δ%)\n");
    let mut t = Table::new(&[
        "design", "sig R", "COVR", "WNS(p)", "TNS(p)", "Pwr(p)", "Area(p)", "WNS(r)", "TNS(r)",
        "Pwr(r)", "Area(r)",
    ]);
    let mut avg1: Vec<Vec<f64>> = vec![Vec::new(); 8];
    let mut avg2: Vec<Vec<f64>> = vec![Vec::new(); 8];
    for (o, sig_r, covr) in &outcomes {
        let dp = o.with_pred.delta_pct(&o.default);
        let dr = o.with_real.delta_pct(&o.default);
        t.row(vec![
            o.design.clone(),
            f2(*sig_r),
            format!("{covr:.0}%"),
            f2(dp.wns),
            f2(dp.tns),
            f2(dp.power),
            f2(dp.area),
            f2(dr.wns),
            f2(dr.tns),
            f2(dr.power),
            f2(dr.area),
        ]);
        for (i, v) in [
            dp.wns, dp.tns, dp.power, dp.area, dr.wns, dr.tns, dr.power, dr.area,
        ]
        .into_iter()
        .enumerate()
        {
            avg1[i].push(v);
            // Avg2: designers run default+optimized concurrently and keep
            // the better outcome — non-improving flows fall back to default.
            let fallback = if i % 4 < 2 && v > 0.0 { 0.0 } else { v };
            avg2[i].push(fallback);
        }
    }
    let mut avg_row = |name: &str, cols: &[Vec<f64>]| {
        let mut row = vec![name.to_owned(), String::new(), String::new()];
        for c in cols {
            row.push(f2(mean(c)));
        }
        t.row(row);
    };
    avg_row("Avg1", &avg1);
    avg_row("Avg2", &avg2);
    t.print();

    println!("\nColumns: (p) = flow driven by predicted ranking, (r) = by ground-truth ranking.");
    println!("Negative WNS/TNS deltas are improvements. Paper Avg2: WNS -3.1%, TNS -9.9%");
    println!("(pred) vs WNS -3.0%, TNS -10.6% (real), with small power/area cost.");

    // Summary of best improvements (paper: up to 33.5% TNS, 16.4% WNS).
    let best_tns = avg1[1].iter().cloned().fold(f64::MAX, f64::min);
    let best_wns = avg1[0].iter().cloned().fold(f64::MAX, f64::min);
    println!("\nbest single-design improvement (pred): TNS {best_tns:.1}%, WNS {best_wns:.1}%");

    let avg_flow = |f: &dyn Fn(&OptimizationOutcome) -> FlowMetrics| -> (f64, f64) {
        let w: Vec<f64> = outcomes.iter().map(|(o, _, _)| f(o).wns).collect();
        let t2: Vec<f64> = outcomes.iter().map(|(o, _, _)| f(o).tns).collect();
        (mean(&w), mean(&t2))
    };
    let (dw, dt) = avg_flow(&|o| o.default);
    let (pw, pt) = avg_flow(&|o| o.with_pred);
    println!("absolute averages: default WNS {dw:.3} TNS {dt:.1} | w.pred WNS {pw:.3} TNS {pt:.1}");

    bench.write_report(
        "table6",
        vec![
            ("folds", Json::UInt(k as u64)),
            ("avg1_wns_pred_delta_pct", Json::Num(mean(&avg1[0]))),
            ("avg1_tns_pred_delta_pct", Json::Num(mean(&avg1[1]))),
            ("avg2_wns_pred_delta_pct", Json::Num(mean(&avg2[0]))),
            ("avg2_tns_pred_delta_pct", Json::Num(mean(&avg2[1]))),
            ("avg2_wns_real_delta_pct", Json::Num(mean(&avg2[4]))),
            ("avg2_tns_real_delta_pct", Json::Num(mean(&avg2[5]))),
        ],
    );
}
