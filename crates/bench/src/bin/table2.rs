//! **Table 2** — per-feature average correlation R with the endpoint
//! arrival-time label, over the 21-design suite (SOG representation,
//! critical-path row per endpoint).

use rtl_timer::features::PATH_FEATURE_NAMES;
use rtl_timer::metrics::{mean, pearson};
use rtlt_bench::{f2, json::Json, Bench, Table};

fn main() {
    let bench = Bench::from_env();
    let set = bench.prepare_suite();
    let nf = PATH_FEATURE_NAMES.len();
    // Per design, correlation of each feature (critical-path row of each
    // endpoint) with the ground-truth arrival label.
    let mut per_feature: Vec<Vec<f64>> = vec![Vec::new(); nf];
    for d in set.designs() {
        let sog = &d.variant_data[0];
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); nf];
        let mut labels = Vec::new();
        for (e, group) in sog.groups.iter().enumerate() {
            if !d.labels_at[e].is_finite() || group.is_empty() {
                continue;
            }
            let row = &sog.rows[group[0]].features;
            for (f, col) in cols.iter_mut().enumerate() {
                col.push(row[f]);
            }
            labels.push(d.labels_at[e]);
        }
        for f in 0..nf {
            per_feature[f].push(pearson(&cols[f], &labels).abs());
        }
    }

    println!("\nTable 2 — feature summary (avg |R| with endpoint arrival label)\n");
    let mut t = Table::new(&["type", "feature", "avg |R|"]);
    let kind = |f: usize| match f {
        0..=3 => "design",
        4..=6 => "cone",
        _ => "path",
    };
    for f in 0..nf {
        t.row(vec![
            kind(f).to_owned(),
            PATH_FEATURE_NAMES[f].to_owned(),
            f2(mean(&per_feature[f])),
        ]);
    }
    t.print();
    println!("\nPaper reference (Table 2): cone driving regs R≈0.45; path AT-on-R R≈0.43,");
    println!("levels R≈0.51, operators R≈0.56, fanout R≈0.40, load R≈0.38, slew R≈0.38.");

    bench.write_report(
        "table2",
        vec![(
            "feature_avg_abs_r",
            Json::Obj(
                (0..nf)
                    .map(|f| {
                        (
                            PATH_FEATURE_NAMES[f].to_owned(),
                            Json::Num(mean(&per_feature[f])),
                        )
                    })
                    .collect(),
            ),
        )],
    );
}
