//! **§4.5 runtime analysis** — RTL-Timer's evaluation cost relative to
//! logic synthesis: BOG construction, register-oriented processing, model
//! inference; and the optimization flow's synthesis-runtime overhead.
//!
//! Also the canonical artifact-store report: prints the per-stage
//! hit/miss/byte table and writes `BENCH_runtime.json` with the suite-prep
//! wall time, cache counters and micro-bench medians (the perf trajectory's
//! machine-readable record; CI asserts a warm second run hits ≥ 90 %).

use rtl_timer::dataset::{build_all_variant_data_scratch, build_variant_data, FeaturizeScratch};
use rtl_timer::optimize::{path_groups_from_scores, retime_set_from_scores};
use rtl_timer::pipeline::RtlTimer;
use rtlt_bench::{
    json::Json, median, pct, remote_addr, shard_spec, steal, worker_id, Bench, Table,
};
use rtlt_bog::BogVariant;
use rtlt_liberty::Library;
use rtlt_ml::{
    Binner, FeatureMatrix, Gbdt, GbdtParams, SquaredObjective, Tree, TreeParams, TreeScratch,
};
use rtlt_sta::{LevelScratch, Sta, StaConfig};
use rtlt_store::{RemoteTier, Store};
use rtlt_synth::{synthesize, SynthOptions};
use std::time::Instant;

fn main() {
    let bench = Bench::from_env();

    // Work-stealing fleet mode: lease designs from the rtlt-stored shard
    // planner until the shared plan drains, then stop (like a static
    // shard, the evaluation below needs the merged full suite). An
    // unreachable or too-old server degrades to the static --shard spec
    // (or the full suite) below.
    if steal() {
        match remote_addr() {
            None => eprintln!("[steal] --steal needs --remote/RTLT_STORE_REMOTE; running static"),
            Some(addr) => {
                let fleet = RemoteTier::new(&addr);
                if let Some(out) = bench.prepare_suite_stolen(&fleet) {
                    println!("\nartifact store (stolen preparation went through it):\n");
                    bench.print_store_stats();
                    let plan = fleet.plan_stats_remote();
                    if let Some(p) = &plan {
                        println!(
                            "fleet plan: {}/{} designs done, {} leases granted, {} stolen (re-queued), {} worker(s)",
                            p.completed, p.planned, p.leases_granted, p.requeued, p.workers
                        );
                    }
                    bench.write_report(
                        "runtime",
                        vec![
                            (
                                "steal",
                                Json::obj([
                                    ("worker", Json::Str(worker_id())),
                                    ("leases", Json::UInt(out.leases)),
                                    ("designs", Json::UInt(out.set.designs().len() as u64)),
                                    ("fell_back", Json::Bool(out.fell_back)),
                                    (
                                        "plan",
                                        match plan {
                                            Some(p) => Json::obj([
                                                ("planned", Json::UInt(p.planned)),
                                                ("completed", Json::UInt(p.completed)),
                                                ("abandoned", Json::UInt(p.abandoned)),
                                                ("leases_granted", Json::UInt(p.leases_granted)),
                                                ("requeued", Json::UInt(p.requeued)),
                                                ("refused", Json::UInt(p.refused)),
                                                ("workers", Json::UInt(p.workers)),
                                            ]),
                                            None => Json::Null,
                                        },
                                    ),
                                ]),
                            ),
                            ("suite_digest", Json::Str(out.set.content_digest().to_hex())),
                        ],
                    );
                    return;
                }
                eprintln!("[steal] planner unreachable at {addr}; degrading to the static path");
            }
        }
    }

    // Fleet-shard mode: prepare this worker's design subset and stop —
    // the evaluation below needs the full suite, which only exists once
    // the shards' disk tiers are merged.
    if let Some((index, count)) = shard_spec() {
        let set = bench.prepare_shard(index, count);
        println!("\nartifact store (shard preparation went through it):\n");
        bench.print_store_stats();
        bench.write_report(
            "runtime",
            vec![
                (
                    "shard",
                    Json::obj([
                        ("index", Json::UInt(index as u64)),
                        ("count", Json::UInt(count as u64)),
                        ("designs", Json::UInt(set.designs().len() as u64)),
                    ]),
                ),
                ("suite_digest", Json::Str(set.content_digest().to_hex())),
            ],
        );
        return;
    }

    let set = bench.prepare_suite();
    let cfg = bench.cfg.clone();
    // Train once on everything but the measured designs.
    let sample: Vec<&str> = vec!["b17", "b18", "Rocket1", "Vex5", "syscaes"];
    let (train, test) = set.split(&sample);
    eprintln!("[runtime] training reference model ...");
    let model = RtlTimer::fit_with(&bench.store, &train, &cfg);

    println!("\n§4.5 — runtime analysis (per design, times in ms)\n");
    let mut t = Table::new(&[
        "design",
        "synth",
        "BOG build",
        "reg-proc",
        "infer",
        "BOG %",
        "proc %",
        "infer %",
        "opt synth %",
    ]);
    let lib = Library::nangate45_like();
    let pseudo = Library::pseudo_bog();
    let mut bog_pcts = Vec::new();
    let mut proc_pcts = Vec::new();
    let mut inf_pcts = Vec::new();
    let mut opt_pcts = Vec::new();
    let mut synth_ms = Vec::new();
    let mut bog_ms = Vec::new();
    let mut proc_ms = Vec::new();
    let mut inf_ms = Vec::new();
    let mut lev_ms = Vec::new();
    let mut dedup_ms = Vec::new();
    let mut batch_ms = Vec::new();
    let mut tree_ms = Vec::new();
    let mut lev_scratch = LevelScratch::new();
    let mut feat_scratch = FeaturizeScratch::new();
    // Reference GBDT for the batch-inference micro, trained once on the
    // first measured design's path rows (feature width is fixed).
    let mut gbdt_ref: Option<Gbdt> = None;
    for d in &test {
        // Synthesis runtime (label flow). These loops *measure* the raw
        // computations, so they bypass the store on purpose — cached
        // timings would measure the cache, not the work.
        let t0 = Instant::now();
        let synth = synthesize(
            &d.sog,
            &lib,
            &SynthOptions {
                seed: d.synth_seed,
                ..Default::default()
            },
        );
        let t_synth = t0.elapsed().as_secs_f64() * 1e3;

        // BOG construction: the paper measures the slowest (AIG) build.
        let t0 = Instant::now();
        let netlist = rtlt_verilog::compile(&d.source, &d.name).expect("compiles");
        let sog = rtlt_bog::blast(&netlist);
        let _aig = sog.to_variant(BogVariant::Aig);
        let t_bog = t0.elapsed().as_secs_f64() * 1e3;

        // Register-oriented processing (pseudo-STA + path sampling +
        // features) for one representation.
        let t0 = Instant::now();
        let data = build_variant_data(&sog, &pseudo, synth.clock_period, d.synth_seed);
        let t_proc = t0.elapsed().as_secs_f64() * 1e3;

        // Model-stack micro-kernels over this design's path rows (the
        // per-design counterparts of the gbdt_predict_batch_b17 /
        // tree_fit_hist_b17 criterion micros): flat SoA batch inference,
        // and one histogram tree grown with a reused scratch histogram.
        let nf = data.rows.first().map_or(1, |r| r.features.len());
        let mut fm = FeatureMatrix::new(nf);
        for r in &data.rows {
            fm.push_row(&r.features);
        }
        let y: Vec<f64> = data
            .rows
            .iter()
            .map(|r| data.endpoint_sta_at[r.endpoint])
            .collect();
        let gbdt = gbdt_ref.get_or_insert_with(|| {
            Gbdt::fit(
                &fm,
                &SquaredObjective { targets: y.clone() },
                &GbdtParams::default(),
            )
        });
        let t0 = Instant::now();
        let _ = gbdt.predict_all(&fm);
        batch_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        let binner = Binner::fit(&fm, 128);
        let codes = binner.codes(&fm);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; y.len()];
        let all: Vec<usize> = (0..y.len()).collect();
        let mut tree_scratch = TreeScratch::for_binner(&binner);
        let t0 = Instant::now();
        let _ = Tree::fit_with(
            &binner,
            &codes,
            &grad,
            &hess,
            &all,
            &TreeParams::default(),
            &mut tree_scratch,
            1,
        );
        tree_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        // Levelized SoA pseudo-STA kernel (the seed-independent half of a
        // cone evaluation) over the whole SOG, with scratch reuse.
        let t0 = Instant::now();
        let _ = Sta::run_levelized(
            &sog,
            &pseudo,
            StaConfig {
                clock_period: synth.clock_period,
                ..Default::default()
            },
            &mut lev_scratch,
        );
        lev_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        // Cold shared-cone featurize (dedup on, fresh in-memory store so
        // nothing is served from the suite's warmed artifact cache).
        let cold = Store::in_memory();
        let t0 = Instant::now();
        let _ = build_all_variant_data_scratch(
            &cold,
            &sog,
            &pseudo,
            synth.clock_period,
            d.synth_seed,
            true,
            &mut feat_scratch,
        );
        dedup_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        // Model inference.
        let t0 = Instant::now();
        let pred = model.predict(d);
        let t_inf = t0.elapsed().as_secs_f64() * 1e3;

        // Optimization synthesis overhead.
        let t0 = Instant::now();
        let _ = synthesize(
            &d.sog,
            &lib,
            &SynthOptions {
                seed: d.synth_seed,
                clock_period: Some(synth.clock_period),
                effort: 1.45,
                path_groups: Some(path_groups_from_scores(&pred.bit_pred)),
                retime_endpoints: retime_set_from_scores(&pred.bit_pred),
            },
        );
        let t_opt = t0.elapsed().as_secs_f64() * 1e3;

        let pcts = [
            100.0 * t_bog / t_synth,
            100.0 * t_proc / t_synth,
            100.0 * t_inf / t_synth,
            100.0 * (t_opt - t_synth) / t_synth,
        ];
        bog_pcts.push(pcts[0]);
        proc_pcts.push(pcts[1]);
        inf_pcts.push(pcts[2]);
        opt_pcts.push(pcts[3]);
        synth_ms.push(t_synth);
        bog_ms.push(t_bog);
        proc_ms.push(t_proc);
        inf_ms.push(t_inf);
        t.row(vec![
            d.name.to_string(),
            format!("{t_synth:.0}"),
            format!("{t_bog:.1}"),
            format!("{t_proc:.1}"),
            format!("{t_inf:.2}"),
            pct(pcts[0]),
            pct(pcts[1]),
            pct(pcts[2]),
            pct(pcts[3]),
        ]);
    }
    t.print();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\naverages: BOG build {:.1}% of synthesis, register processing {:.1}%, inference {:.2}%,",
        avg(&bog_pcts),
        avg(&proc_pcts),
        avg(&inf_pcts)
    );
    println!("optimization synthesis overhead {:+.1}%", avg(&opt_pcts));
    println!("\npaper: AIG construction ≈3.2%, register processing ≈0.9%, inference <0.1 s,");
    println!("       optimization flow +45% synthesis runtime.");

    println!("\nartifact store (suite preparation went through it):\n");
    bench.print_store_stats();

    bench.write_report(
        "runtime",
        vec![
            // Content digest of the prepared suite: cold, warm, remote-fed
            // and shard-merged preparations must all agree (the fleet CI
            // jobs compare this field across runs).
            ("suite_digest", Json::Str(set.content_digest().to_hex())),
            (
                "micro_ms",
                Json::obj([
                    ("synth_median", Json::Num(median(&synth_ms))),
                    ("bog_build_median", Json::Num(median(&bog_ms))),
                    ("reg_proc_median", Json::Num(median(&proc_ms))),
                    ("inference_median", Json::Num(median(&inf_ms))),
                    ("levelized_sta_median", Json::Num(median(&lev_ms))),
                    ("cone_shard_dedup_median", Json::Num(median(&dedup_ms))),
                    ("gbdt_predict_batch_median", Json::Num(median(&batch_ms))),
                    ("tree_fit_hist_median", Json::Num(median(&tree_ms))),
                    ("bog_pct_of_synth_avg", Json::Num(avg(&bog_pcts))),
                    ("proc_pct_of_synth_avg", Json::Num(avg(&proc_pcts))),
                    ("infer_pct_of_synth_avg", Json::Num(avg(&inf_pcts))),
                    ("opt_overhead_pct_avg", Json::Num(avg(&opt_pcts))),
                ]),
            ),
        ],
    );
}
