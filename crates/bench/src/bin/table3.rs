//! **Table 3** — benchmark design information: family, design count, size
//! range (pseudo-gates and endpoints) and source-HDL label.

use rtlt_bench::{Bench, Table};
use rtlt_designgen::{catalog, Family};

fn main() {
    let bench = Bench::from_env();
    let set = bench.prepare_suite();
    println!("\nTable 3 — benchmark design information\n");
    let mut t = Table::new(&[
        "benchmark",
        "#designs",
        "gates (pseudo-cells)",
        "endpoints",
        "HDL",
    ]);
    for (fam, label) in [
        (Family::Itc99, "ITC'99-style"),
        (Family::OpenCores, "OpenCores-style"),
        (Family::Chipyard, "Chipyard-style"),
        (Family::VexRiscv, "VexRiscv-style"),
    ] {
        let names: Vec<&str> = catalog()
            .iter()
            .filter(|d| d.family == fam)
            .map(|d| d.name)
            .collect();
        let mut gates = Vec::new();
        let mut eps = Vec::new();
        for n in &names {
            let d = set.get(n).expect("suite design");
            let s = d.sog.stats();
            gates.push(s.total_cells);
            eps.push(d.labels_at.len());
        }
        t.row(vec![
            label.to_owned(),
            names.len().to_string(),
            format!(
                "{} - {}",
                gates.iter().min().unwrap(),
                gates.iter().max().unwrap()
            ),
            format!(
                "{} - {}",
                eps.iter().min().unwrap(),
                eps.iter().max().unwrap()
            ),
            catalog()
                .iter()
                .find(|d| d.family == fam)
                .unwrap()
                .family
                .hdl()
                .to_owned(),
        ]);
    }
    t.print();

    println!("\nPer-design detail:\n");
    let mut t = Table::new(&[
        "design",
        "family",
        "pseudo-gates",
        "endpoints",
        "max level",
        "clock (ns)",
    ]);
    for spec in catalog() {
        let d = set.get(spec.name).expect("suite design");
        let s = d.sog.stats();
        t.row(vec![
            spec.name.to_owned(),
            format!("{:?}", spec.family),
            s.total_cells.to_string(),
            d.labels_at.len().to_string(),
            s.max_level.to_string(),
            format!("{:.3}", d.clock),
        ]);
    }
    t.print();
    println!("\nPaper scales: 6K-510K gates, 0.2K-146K endpoints (ours ~10x smaller,");
    println!("uniform family mix preserved — see DESIGN.md substitution #2).");

    bench.write_report("table3", Vec::new());
}
