//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary honors:
//!
//! * `RTLT_FAST=1` — reduced folds/epochs for smoke runs,
//! * `RTLT_SEED=<u64>` — override the master seed (default 2024),
//! * `--cache-dir <DIR>` / `--cache-dir=<DIR>` / `RTLT_CACHE_DIR=<DIR>` —
//!   root of the shared on-disk artifact store (default
//!   `target/rtlt-cache`; `none`/`off` disables persistence),
//! * `--remote <ADDR>` / `--remote=<ADDR>` / `RTLT_STORE_REMOTE=<ADDR>` —
//!   stack a [`RemoteTier`] speaking to a shared `rtlt-stored` server
//!   behind the local tiers (`none`/`off` disables; an unreachable server
//!   degrades to recompute, never an error),
//! * `RTLT_TIER_POLICY=<SPEC>` — per-namespace payload coding and decoded
//!   front-cache quotas (e.g. `featurize=packed:mem=64m,modast=raw`; see
//!   [`TierPolicy::parse`]). The default packs `featurize` (the warm-path
//!   bulk) and stores the small `modast`/`compile` artifacts raw,
//! * `--shard <I>/<N>` / `RTLT_SHARD=<I>/<N>` — fleet-sharded suite
//!   preparation: this invocation prepares only shard `I` of `N` (see
//!   [`Bench::prepare_shard`]; binaries that train models run them only
//!   unsharded),
//! * `--steal` / `RTLT_STEAL=1` — dynamic work-stealing preparation: the
//!   worker leases design names from the `rtlt-stored` server's shard
//!   planner instead of a static split (needs `--remote`; see
//!   [`Bench::prepare_suite_stolen`]). `RTLT_WORKER` names the worker
//!   (default `worker-<pid>`), `RTLT_STEAL_STALL_MS` injects a
//!   post-lease stall (the CI handicap hook), and `RTLT_THREADS`
//!   overrides the worker's thread count (the CI throttle hook),
//! * `gc [BUDGET_BYTES]` subcommand — size-bounded LRU-by-mtime eviction of
//!   the **local** disk tier (budget also via `RTLT_CACHE_BUDGET_BYTES`,
//!   default 4 GiB), then exit,
//! * `merge <SRC_DIR>...` subcommand — merge other cache dirs' disk tiers
//!   into this one's (the fleet-assembly step after sharded prepares),
//!   then exit,
//! * `--cache-stats` — print the tier stack (including the remote
//!   server's size, if reachable) and per-namespace disk usage, then exit.
//!
//! All suite preparation goes through [`Bench::prepare_suite`], which
//! threads the shared [`Store`] through the prepare pipeline: a warm second
//! run of any binary answers suite preparation from the `featurize`
//! namespace instead of re-running compile → blast → label → featurize.
//! Every binary writes a machine-readable `BENCH_<bin>.json` via
//! [`Bench::write_report`].

pub mod json;

use json::Json;
use rtl_timer::cache::stage;
use rtl_timer::pipeline::{DesignSet, StealConfig, StolenPrepare, TimerConfig};
use rtlt_store::{NamespaceStats, RemoteTier, StatsSnapshot, Store, TierKind, TierPolicy};
use std::cell::{Cell, RefCell};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default disk-tier GC budget when neither the `gc` argument nor
/// `RTLT_CACHE_BUDGET_BYTES` specifies one: 4 GiB.
pub const DEFAULT_CACHE_BUDGET: u64 = 4 << 30;

/// The disk-tier GC budget: `RTLT_CACHE_BUDGET_BYTES`, else the default.
pub fn cache_budget() -> u64 {
    std::env::var("RTLT_CACHE_BUDGET_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CACHE_BUDGET)
}

/// Handles the cache-maintenance invocations shared by every bench binary:
/// the `gc [BUDGET_BYTES]` and `merge <SRC_DIR>...` subcommands and the
/// `--cache-stats` flag. Returns `true` when a maintenance action ran (the
/// binary should exit).
pub fn run_maintenance(store: &Store) -> bool {
    let args = positional_args();
    if args.first().map(String::as_str) == Some("gc") {
        let budget = args
            .get(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(cache_budget);
        let r = store.gc(budget);
        println!(
            "[gc] scanned {} files ({} KiB), evicted {} files ({} KiB), {} KiB remain (budget {} KiB)",
            r.scanned_files,
            r.scanned_bytes / 1024,
            r.evicted_files,
            r.evicted_bytes / 1024,
            r.remaining_bytes / 1024,
            budget / 1024
        );
        return true;
    }
    if args.first().map(String::as_str) == Some("merge") {
        if args.len() < 2 {
            eprintln!("error: merge needs at least one source cache dir");
            std::process::exit(2);
        }
        if store.disk_dir().is_none() {
            eprintln!("error: merge needs a disk tier (--cache-dir is `none`)");
            std::process::exit(2);
        }
        for src in &args[1..] {
            let r = store.merge_disk_tier(std::path::Path::new(src));
            println!(
                "[merge] {src}: merged {} entries ({} KiB), {} already present, {} invalid skipped",
                r.merged_files,
                r.merged_bytes / 1024,
                r.skipped_existing,
                r.invalid_entries
            );
        }
        return true;
    }
    if std::env::args().any(|a| a == "--cache-stats") {
        print_tier_stack(store);
        println!("tier policy: {}", store.tier_policy().describe());
        if let Some(addr) = remote_addr() {
            // Live server-side load: how many peers share the cache right
            // now, and how many exchanges are in flight across them. A
            // pre-gen3 or unreachable server simply has no load to report.
            match RemoteTier::new(&addr).server_load() {
                Some(load) => println!(
                    "remote server {addr}: wire v{}, {} connections, {} in-flight exchanges",
                    load.wire_version, load.connections, load.inflight
                ),
                None => println!("remote server {addr}: no live load info (old or unreachable)"),
            }
        }
        match store.disk_dir() {
            None => println!("(no disk tier configured)"),
            Some(dir) => {
                println!("\ndisk tier under {}:", dir.display());
                let usage = store.disk_usage_decoded();
                let mut t = Table::new(&[
                    "namespace",
                    "entries",
                    "KiB on disk",
                    "KiB decoded",
                    "ratio",
                ]);
                let (mut total_stored, mut total_decoded) = (0u64, 0u64);
                for (ns, files, stored, decoded) in &usage {
                    total_stored += stored;
                    total_decoded += decoded;
                    t.row(vec![
                        ns.clone(),
                        files.to_string(),
                        (stored / 1024).to_string(),
                        (decoded / 1024).to_string(),
                        format!("{:.2}", ratio(*stored, *decoded)),
                    ]);
                }
                t.print();
                println!(
                    "total: {} KiB on disk for {} KiB decoded (ratio {:.2}, gc budget {} KiB)",
                    total_stored / 1024,
                    total_decoded / 1024,
                    ratio(total_stored, total_decoded),
                    cache_budget() / 1024
                );
            }
        }
        return true;
    }
    false
}

/// Stored-over-decoded byte ratio (1.0 when nothing is decoded — no
/// traffic is neither a win nor a loss).
fn ratio(stored: u64, decoded: u64) -> f64 {
    if decoded == 0 {
        1.0
    } else {
        stored as f64 / decoded as f64
    }
}

/// Prints the store's tier stack in fallback order — one line per tier
/// with its size (the remote tier's numbers come from the server's STAT
/// answer; an unreachable server prints as such instead of failing).
pub fn print_tier_stack(store: &Store) {
    let tiers = store.tier_stats();
    if tiers.is_empty() {
        println!("tier stack: (decoded front cache only — nothing persistent)");
        return;
    }
    println!("tier stack (fallback order):");
    for t in tiers {
        if t.reachable {
            println!(
                "  {:<6} {:<40} {} entries, {} KiB",
                t.kind.label(),
                t.detail,
                t.entries,
                t.bytes / 1024
            );
        } else {
            println!("  {:<6} {:<40} unreachable", t.kind.label(), t.detail);
        }
    }
}

/// Whether fast (smoke) mode is requested.
pub fn fast() -> bool {
    std::env::var("RTLT_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Cross-validation folds: 10 as in the paper, 3 in fast mode.
pub fn folds() -> usize {
    if fast() {
        3
    } else {
        10
    }
}

/// Harness configuration (seed overridable via `RTLT_SEED`, worker
/// threads via `RTLT_THREADS` — the fleet-smoke throttle hook).
pub fn config() -> TimerConfig {
    let seed = std::env::var("RTLT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    let mut cfg = TimerConfig {
        seed,
        ..TimerConfig::default()
    };
    if let Some(threads) = std::env::var("RTLT_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t: &usize| t >= 1)
    {
        cfg.threads = threads;
    }
    cfg
}

/// Whether dynamic work-stealing preparation is requested (`--steal` flag
/// or `RTLT_STEAL=1`).
pub fn steal() -> bool {
    std::env::args().skip(1).any(|a| a == "--steal")
        || std::env::var("RTLT_STEAL")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Stable worker identity for lease bookkeeping: `RTLT_WORKER`, else
/// `worker-<pid>`.
pub fn worker_id() -> String {
    std::env::var("RTLT_WORKER")
        .ok()
        .filter(|w| !w.is_empty())
        .unwrap_or_else(|| format!("worker-{}", std::process::id()))
}

/// Post-lease stall (`RTLT_STEAL_STALL_MS`): the CI fleet-steal smoke
/// handicaps one worker with this so its lease deterministically expires
/// and the other worker steals the design. Zero (the default) in any real
/// deployment.
pub fn steal_stall() -> Duration {
    Duration::from_millis(
        std::env::var("RTLT_STEAL_STALL_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    )
}

/// Extracts per-design prepare-cost priors from a previous run's
/// `BENCH_runtime.json` (`design_seconds` object), to seed the fleet
/// planner's longest-expected-first ordering. Returns an empty list when
/// the file is absent or does not carry the section — priors are an
/// optimization, never a requirement.
///
/// Hand-rolled scan (the workspace renders JSON but deliberately carries
/// no parser): tolerant of field order and whitespace, keyed on the exact
/// `"design_seconds"` object shape [`Bench::write_report`] emits.
pub fn load_cost_priors(path: &Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(at) = text.find("\"design_seconds\"") else {
        return Vec::new();
    };
    let rest = &text[at..];
    let Some(open) = rest.find('{') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find('}') else {
        return Vec::new();
    };
    let body = &rest[open + 1..open + close];
    let mut out = Vec::new();
    for pair in body.split(',') {
        let Some((k, v)) = pair.split_once(':') else {
            continue;
        };
        let name = k.trim().trim_matches('"');
        if name.is_empty() {
            continue;
        }
        if let Ok(seconds) = v.trim().parse::<f64>() {
            if seconds.is_finite() && seconds >= 0.0 {
                out.push((name.to_owned(), seconds));
            }
        }
    }
    out
}

/// Resolves the shared cache directory: `--cache-dir` argument first, then
/// `RTLT_CACHE_DIR`, then the `target/rtlt-cache` default. `none`, `off`
/// and the empty string disable the disk tier.
pub fn cache_dir() -> Option<PathBuf> {
    fn parse(v: String) -> Option<PathBuf> {
        match v.as_str() {
            "" | "none" | "off" => None,
            _ => Some(PathBuf::from(v)),
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--cache-dir" {
            // A trailing flag with no value is a usage error, not a silent
            // "caching off" — the difference costs a ~70 s re-preparation.
            let Some(v) = args.next() else {
                eprintln!("error: --cache-dir needs a value (a directory, or `none` to disable)");
                std::process::exit(2);
            };
            return parse(v);
        }
        if let Some(v) = a.strip_prefix("--cache-dir=") {
            return parse(v.to_owned());
        }
    }
    if let Ok(v) = std::env::var("RTLT_CACHE_DIR") {
        return parse(v);
    }
    Some(PathBuf::from("target/rtlt-cache"))
}

/// Resolves the shared artifact service address: `--remote` argument
/// first, then `RTLT_STORE_REMOTE`. `none`, `off` and the empty string
/// disable the remote tier (the default).
pub fn remote_addr() -> Option<String> {
    fn parse(v: String) -> Option<String> {
        match v.as_str() {
            "" | "none" | "off" => None,
            _ => Some(v),
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--remote" {
            let Some(v) = args.next() else {
                eprintln!("error: --remote needs a value (host:port, or `none` to disable)");
                std::process::exit(2);
            };
            return parse(v);
        }
        if let Some(v) = a.strip_prefix("--remote=") {
            return parse(v.to_owned());
        }
    }
    std::env::var("RTLT_STORE_REMOTE").ok().and_then(parse)
}

/// Parses a `<I>/<N>` shard spec (0-based index, total count). Any
/// malformed or out-of-range spec is a hard usage error: a fleet worker
/// silently falling back to an unsharded full-suite run would do N× the
/// work into its shard's cache dir with no diagnostic.
fn parse_shard(v: &str) -> (usize, usize) {
    let parsed = v
        .split_once('/')
        .and_then(|(i, n)| Some((i.trim().parse().ok()?, n.trim().parse().ok()?)));
    match parsed {
        Some((i, n)) if n > 0 && i < n => (i, n),
        _ => {
            eprintln!("error: shard spec must be I/N with I < N and N > 0, got {v:?}");
            std::process::exit(2);
        }
    }
}

/// Resolves the fleet shard spec: `--shard I/N` argument first, then
/// `RTLT_SHARD` (`none`/`off`/empty disable it). `None` means an
/// unsharded (full-suite) run; a present-but-malformed spec exits with a
/// usage error instead of silently running unsharded.
pub fn shard_spec() -> Option<(usize, usize)> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--shard" {
            let Some(v) = args.next() else {
                eprintln!("error: --shard needs a value (I/N, e.g. 0/4)");
                std::process::exit(2);
            };
            return Some(parse_shard(&v));
        }
        if let Some(v) = a.strip_prefix("--shard=") {
            return Some(parse_shard(v));
        }
    }
    match std::env::var("RTLT_SHARD").ok().as_deref() {
        None | Some("" | "none" | "off") => None,
        Some(v) => Some(parse_shard(v)),
    }
}

/// Positional process arguments with harness flags (`--cache-dir [DIR]`,
/// `--remote [ADDR]`, `--shard [I/N]`, `--steal`, `--cache-stats`)
/// stripped — for binaries that take a design name argument.
pub fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--cache-dir" || a == "--remote" || a == "--shard" {
            let _ = args.next();
        } else if !a.starts_with("--cache-dir=")
            && !a.starts_with("--remote=")
            && !a.starts_with("--shard=")
            && a != "--cache-stats"
            && a != "--steal"
        {
            out.push(a);
        }
    }
    out
}

/// One bench invocation: configuration plus the shared artifact store every
/// preparation and optimization flow goes through.
#[derive(Debug)]
pub struct Bench {
    /// Harness configuration.
    pub cfg: TimerConfig,
    /// Shared two-tier artifact store (disk tier per [`cache_dir`]).
    pub store: Store,
    prep_seconds: Cell<f64>,
    /// Shared-cone dedup counters snapshotted when the last preparation
    /// finished, so later featurize calls (e.g. the runtime analysis
    /// loop's uncached measurements) don't leak into the report.
    dedup_stats: Cell<Option<rtl_timer::dataset::ConeDedupStats>>,
    /// Observed per-design prepare wall times of the last preparation —
    /// written into `BENCH_<bin>.json` as `design_seconds`, where the
    /// next fleet run's planner reads them as cost priors.
    design_seconds: RefCell<Vec<(String, f64)>>,
}

impl Default for Bench {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Bench {
    /// Builds the harness from environment variables and process arguments.
    /// Cache-maintenance invocations (`gc`, `--cache-stats`) are handled
    /// here — they run against the configured store and exit, so every
    /// bench binary supports them uniformly.
    pub fn from_env() -> Bench {
        let mut store = match cache_dir() {
            Some(dir) => Store::on_disk(dir),
            None => Store::in_memory(),
        };
        // Payload policy before any tier traffic: a malformed spec is a
        // hard usage error — silently falling back to the default would
        // make an A/B compression run measure the wrong thing.
        if let Ok(spec) = std::env::var("RTLT_TIER_POLICY") {
            match TierPolicy::parse(&spec) {
                Ok(policy) => store.set_tier_policy(policy),
                Err(e) => {
                    eprintln!("error: RTLT_TIER_POLICY: {e}");
                    std::process::exit(2);
                }
            }
        }
        // The remote tier stacks *behind* the local tiers: local disk
        // answers first, the shared server fills the gaps, and remote hits
        // populate the local disk on the way back (read-through).
        if let Some(addr) = remote_addr() {
            store.push_tier(Arc::new(RemoteTier::new(addr)));
        }
        if run_maintenance(&store) {
            std::process::exit(0);
        }
        Bench {
            cfg: config(),
            store,
            prep_seconds: Cell::new(f64::NAN),
            dedup_stats: Cell::new(None),
            design_seconds: RefCell::new(Vec::new()),
        }
    }

    /// Prepares the 21-design suite through the store, printing progress
    /// timing and the per-stage cache outcome.
    pub fn prepare_suite(&self) -> DesignSet {
        match self.store.disk_dir() {
            Some(dir) => eprintln!(
                "[harness] preparing 21-design suite (threads={}, cache-dir={}) ...",
                self.cfg.threads,
                dir.display()
            ),
            None => eprintln!(
                "[harness] preparing 21-design suite (threads={}, cache-dir=none) ...",
                self.cfg.threads
            ),
        }
        let t = Instant::now();
        let sources = rtlt_designgen::generate_all();
        let (set, timed) = DesignSet::prepare_named_timed_with(&sources, &self.cfg, &self.store)
            .unwrap_or_else(|e| panic!("{e}"));
        *self.design_seconds.borrow_mut() = timed;
        let secs = t.elapsed().as_secs_f64();
        self.prep_seconds.set(secs);
        self.dedup_stats
            .set(Some(rtl_timer::dataset::cone_dedup_stats()));
        let agg = self.prepare_stats();
        eprintln!(
            "[harness] suite ready in {secs:.1}s (prepare stages: {} hits / {} lookups = {:.1}% hit rate)",
            agg.hits(),
            agg.lookups(),
            agg.hit_rate_pct()
        );
        set
    }

    /// Fleet-sharded preparation: prepares only shard `index` of `count`
    /// of the benchmark suite through the store, printing the same timing
    /// and cache-outcome summary as [`Bench::prepare_suite`]. The disk
    /// tiers of N such runs merge (`merge` subcommand) into one cache that
    /// is byte-identical to an unsharded cold prepare.
    pub fn prepare_shard(&self, index: usize, count: usize) -> DesignSet {
        eprintln!(
            "[harness] preparing suite shard {index}/{count} (threads={}, cache-dir={}) ...",
            self.cfg.threads,
            match self.store.disk_dir() {
                Some(dir) => dir.display().to_string(),
                None => "none".to_owned(),
            }
        );
        let t = Instant::now();
        let sources = DesignSet::shard_sources(&rtlt_designgen::generate_all(), index, count);
        let (set, timed) = DesignSet::prepare_named_timed_with(&sources, &self.cfg, &self.store)
            .unwrap_or_else(|e| panic!("{e}"));
        *self.design_seconds.borrow_mut() = timed;
        let secs = t.elapsed().as_secs_f64();
        self.prep_seconds.set(secs);
        self.dedup_stats
            .set(Some(rtl_timer::dataset::cone_dedup_stats()));
        let agg = self.prepare_stats();
        eprintln!(
            "[harness] shard {index}/{count} ready: {} designs in {secs:.1}s ({} hits / {} lookups = {:.1}% hit rate)",
            set.designs().len(),
            agg.hits(),
            agg.lookups(),
            agg.hit_rate_pct()
        );
        set
    }

    /// Work-stealing fleet preparation: leases suite designs from the
    /// `rtlt-stored` server behind `fleet` instead of taking a static
    /// shard, seeding the planner's cost model from the previous
    /// `BENCH_runtime.json` when one is present. Returns `None` when the
    /// server is unreachable or too old to plan — the caller degrades to
    /// the static-shard/full path.
    pub fn prepare_suite_stolen(&self, fleet: &RemoteTier) -> Option<StolenPrepare> {
        let steal = StealConfig {
            stall_after_lease: steal_stall(),
            fallback_shard: shard_spec(),
            cost_priors: load_cost_priors(Path::new("BENCH_runtime.json")),
            ..StealConfig::new(worker_id())
        };
        eprintln!(
            "[harness] work-stealing preparation as {:?} (threads={}, cache-dir={}, {} cost priors)",
            steal.worker,
            self.cfg.threads,
            match self.store.disk_dir() {
                Some(dir) => dir.display().to_string(),
                None => "none".to_owned(),
            },
            steal.cost_priors.len()
        );
        let t = Instant::now();
        let out = DesignSet::prepare_suite_stolen(&self.cfg, &self.store, fleet, &steal)?;
        let secs = t.elapsed().as_secs_f64();
        self.prep_seconds.set(secs);
        self.dedup_stats
            .set(Some(rtl_timer::dataset::cone_dedup_stats()));
        *self.design_seconds.borrow_mut() = out.design_seconds.clone();
        let agg = self.prepare_stats();
        eprintln!(
            "[harness] stolen share ready: {} designs over {} leases in {secs:.1}s{} ({} hits / {} lookups = {:.1}% hit rate)",
            out.set.designs().len(),
            out.leases,
            if out.fell_back {
                " [static fallback after server loss]"
            } else {
                ""
            },
            agg.hits(),
            agg.lookups(),
            agg.hit_rate_pct()
        );
        Some(out)
    }

    /// Shared-cone dedup counters as of the end of the last preparation
    /// (live counters before any preparation has run).
    pub fn prepared_dedup_stats(&self) -> rtl_timer::dataset::ConeDedupStats {
        self.dedup_stats
            .get()
            .unwrap_or_else(rtl_timer::dataset::cone_dedup_stats)
    }

    /// Wall time of the last [`Bench::prepare_suite`] (NaN before any run).
    pub fn prep_seconds(&self) -> f64 {
        self.prep_seconds.get()
    }

    /// Aggregate store counters over the four prepare stages.
    pub fn prepare_stats(&self) -> NamespaceStats {
        self.store.stats().aggregate(stage::PREPARE)
    }

    /// Prints the per-stage store counters as a table (hit rates per
    /// namespace) plus the per-tier mem/disk/remote breakdown of where
    /// warm data actually came from.
    pub fn print_store_stats(&self) {
        let snap = self.store.stats();
        if snap.namespaces.is_empty() {
            println!("(store untouched)");
            return;
        }
        let mut t = Table::new(&[
            "stage",
            "mem hits",
            "disk hits",
            "remote hits",
            "batched",
            "misses",
            "hit %",
            "KiB written",
            "KiB read",
            "stored KiB w",
            "stored KiB r",
            "ratio",
            "turns",
        ]);
        for (ns, s) in &snap.namespaces {
            t.row(vec![
                ns.clone(),
                s.mem_hits.to_string(),
                s.disk_hits.to_string(),
                s.remote_hits.to_string(),
                s.batched_hits.to_string(),
                s.misses.to_string(),
                format!("{:.1}", s.hit_rate_pct()),
                (s.bytes_written / 1024).to_string(),
                (s.bytes_read / 1024).to_string(),
                (s.stored_bytes_written / 1024).to_string(),
                (s.stored_bytes_read / 1024).to_string(),
                format!("{:.2}", s.compression_ratio()),
                s.round_trips.to_string(),
            ]);
        }
        t.print();
        let hits = snap.tier_hits();
        println!(
            "tier breakdown: {} mem ({:.1}%), {} disk ({:.1}%), {} remote ({:.1}%) of {} hits",
            hits.mem,
            hits.share_pct(TierKind::Memory),
            hits.disk,
            hits.share_pct(TierKind::Disk),
            hits.remote,
            hits.share_pct(TierKind::Remote),
            hits.total()
        );
        println!(
            "in-memory tier: {} KiB resident, {} evictions",
            snap.mem_bytes / 1024,
            snap.evictions
        );
        if snap.remote_round_trips > 0 {
            println!(
                "remote wire: {} round trips total (pipelining makes this < request count)",
                snap.remote_round_trips
            );
        }
        let dedup = self.prepared_dedup_stats();
        if dedup.total_signals > 0 {
            println!(
                "cone dedup: {} unique cones / {} signals ({:.1}% shared), {} evals saved, featurize {:.2}s",
                dedup.unique_cones,
                dedup.total_signals,
                100.0 * (1.0 - dedup.unique_cones as f64 / dedup.total_signals as f64),
                dedup.saved_evals,
                dedup.featurize_seconds,
            );
        }
    }

    /// Standard report fields: configuration, suite-prep wall time and the
    /// full per-stage store counters.
    fn report_base(&self, bin: &str) -> Vec<(String, Json)> {
        let snap = self.store.stats();
        let agg = self.prepare_stats();
        let dedup = self.prepared_dedup_stats();
        vec![
            ("schema_version".to_owned(), Json::Int(1)),
            ("bin".to_owned(), Json::Str(bin.to_owned())),
            ("seed".to_owned(), Json::UInt(self.cfg.seed)),
            ("threads".to_owned(), Json::UInt(self.cfg.threads as u64)),
            ("fast".to_owned(), Json::Bool(fast())),
            (
                "suite_prep_seconds".to_owned(),
                Json::Num(self.prep_seconds()),
            ),
            (
                "prepare_hit_rate_pct".to_owned(),
                Json::Num(agg.hit_rate_pct()),
            ),
            // Guards the CI warm-cache gate against passing vacuously: a
            // suite prepared without consulting the store reports 100 %
            // hit rate (0/0) but 0 lookups.
            ("prepare_lookups".to_owned(), Json::UInt(agg.lookups())),
            ("prepare_hits".to_owned(), Json::UInt(agg.hits())),
            // Per-tier provenance of the warm prepare data — the remote
            // smoke gate asserts most of a cold-local run came from the
            // shared server.
            ("prepare_mem_hits".to_owned(), Json::UInt(agg.mem_hits)),
            ("prepare_disk_hits".to_owned(), Json::UInt(agg.disk_hits)),
            (
                "prepare_remote_hits".to_owned(),
                Json::UInt(agg.remote_hits),
            ),
            // Of the remote hits, how many arrived through a batched
            // (GETM) prefetch instead of per-key round trips.
            (
                "prepare_batched_hits".to_owned(),
                Json::UInt(agg.batched_hits),
            ),
            // Frame bytes the warm path actually pulled off disk/wire for
            // the prepare stages — the CI perf gate's bytes-read column,
            // and the compression smoke's ≥40 %-fewer-featurize-bytes
            // assertion reads the per-namespace variant.
            (
                "prepare_stored_read_bytes".to_owned(),
                Json::UInt(agg.stored_bytes_read),
            ),
            // Wire turnarounds paid by the prepare-stage lookups, and the
            // store-wide total (which also covers write-back and flush
            // traffic) — the multiplexed-store smoke asserts the pipelined
            // total beats the serialized one on the same workload.
            (
                "prepare_round_trips".to_owned(),
                Json::UInt(agg.round_trips),
            ),
            (
                "remote_round_trips".to_owned(),
                Json::UInt(snap.remote_round_trips),
            ),
            (
                "featurize_stored_read_bytes".to_owned(),
                Json::UInt(snap.namespace("featurize").stored_bytes_read),
            ),
            // Shared-cone featurization: how much per-signal evaluation the
            // structural dedup collapsed, and the wall time spent inside
            // `build_all_variant_data` (the cold featurize kernel the CI
            // perf gate tracks as `cold_prepare_seconds`).
            ("unique_cones".to_owned(), Json::UInt(dedup.unique_cones)),
            ("total_signals".to_owned(), Json::UInt(dedup.total_signals)),
            (
                "dedup_saved_evals".to_owned(),
                Json::UInt(dedup.saved_evals),
            ),
            (
                "cold_featurize_seconds".to_owned(),
                Json::Num(dedup.featurize_seconds),
            ),
            // Per-design prepare wall times (sorted by name): the cost
            // priors the next fleet run's shard planner seeds from.
            ("design_seconds".to_owned(), {
                let mut timed = self.design_seconds.borrow().clone();
                timed.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(
                    timed
                        .into_iter()
                        .map(|(name, secs)| (name, Json::Num(secs)))
                        .collect(),
                )
            }),
            (
                "cache_dir".to_owned(),
                match self.store.disk_dir() {
                    Some(d) => Json::Str(d.display().to_string()),
                    None => Json::Null,
                },
            ),
            (
                "remote".to_owned(),
                match remote_addr() {
                    Some(addr) => Json::Str(addr),
                    None => Json::Null,
                },
            ),
            ("store".to_owned(), stats_json(&snap)),
        ]
    }

    /// Writes `BENCH_<bin>.json` (cwd) with the standard fields plus
    /// `extras`, and prints where it went.
    pub fn write_report(&self, bin: &str, extras: Vec<(&'static str, Json)>) {
        let mut fields = self.report_base(bin);
        fields.extend(extras.into_iter().map(|(k, v)| (k.to_owned(), v)));
        let path = format!("BENCH_{bin}.json");
        match std::fs::write(&path, Json::Obj(fields).render()) {
            Ok(()) => eprintln!("[harness] wrote {path}"),
            Err(e) => eprintln!("[harness] could not write {path}: {e}"),
        }
    }
}

fn namespace_json(s: &NamespaceStats) -> Json {
    Json::obj([
        ("mem_hits", Json::UInt(s.mem_hits)),
        ("disk_hits", Json::UInt(s.disk_hits)),
        ("remote_hits", Json::UInt(s.remote_hits)),
        ("batched_hits", Json::UInt(s.batched_hits)),
        ("misses", Json::UInt(s.misses)),
        ("hit_rate_pct", Json::Num(s.hit_rate_pct())),
        ("bytes_written", Json::UInt(s.bytes_written)),
        ("bytes_read", Json::UInt(s.bytes_read)),
        // Frame (compressed) bytes: what actually lands on disk and
        // travels the wire, vs. the logical counters above.
        ("stored_bytes_written", Json::UInt(s.stored_bytes_written)),
        ("stored_bytes_read", Json::UInt(s.stored_bytes_read)),
        ("compression_ratio", Json::Num(s.compression_ratio())),
        ("corrupt_entries", Json::UInt(s.corrupt_entries)),
        ("round_trips", Json::UInt(s.round_trips)),
    ])
}

fn stats_json(snap: &StatsSnapshot) -> Json {
    let mut fields: Vec<(String, Json)> = snap
        .namespaces
        .iter()
        .map(|(ns, s)| (ns.clone(), namespace_json(s)))
        .collect();
    fields.push(("evictions".to_owned(), Json::UInt(snap.evictions)));
    fields.push(("mem_bytes".to_owned(), Json::UInt(snap.mem_bytes)));
    fields.push((
        "remote_round_trips".to_owned(),
        Json::UInt(snap.remote_round_trips),
    ));
    Json::Obj(fields)
}

/// Median of a sample (NaN when empty); used for the micro-bench report.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn print(&self) {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
        for r in &self.rows {
            line(r);
        }
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}")
}

/// Draws a compact ASCII histogram of values into `bins` buckets.
pub fn ascii_histogram(values: &[f64], bins: usize, width: usize) -> String {
    if values.is_empty() {
        return String::from("(empty)");
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - min) / span) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut s = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / bins as f64;
        let bar = "#".repeat((c * width).div_ceil(peak).min(width));
        s.push_str(&format!("{lo:8.3} | {bar:<w$} {c}\n", w = width));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_all_bins() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let h = ascii_histogram(&vals, 5, 20);
        assert_eq!(h.lines().count(), 5);
        assert!(h.contains('#'));
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn median_of_odd_and_even_samples() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn cost_priors_scan_round_trips_the_report_shape() {
        let dir = std::env::temp_dir().join(format!("rtlt-priors-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("BENCH_runtime.json");
        // Exactly the shape write_report emits.
        let report = Json::obj([
            ("bin", Json::Str("runtime".into())),
            (
                "design_seconds",
                Json::Obj(vec![
                    ("b17".to_owned(), Json::Num(3.25)),
                    ("b18".to_owned(), Json::Num(0.5)),
                    ("nanvalue".to_owned(), Json::Num(f64::NAN)), // renders null
                ]),
            ),
            ("suite_prep_seconds", Json::Num(10.0)),
        ]);
        std::fs::write(&path, report.render()).expect("write report");
        let priors = load_cost_priors(&path);
        assert_eq!(
            priors,
            vec![("b17".to_owned(), 3.25), ("b18".to_owned(), 0.5)],
            "finite entries load; the null renders are skipped"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_priors_missing_file_or_section_is_empty() {
        assert!(load_cost_priors(Path::new("/nonexistent/BENCH_runtime.json")).is_empty());
        let dir = std::env::temp_dir().join(format!("rtlt-priors-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("BENCH_runtime.json");
        std::fs::write(&path, "{\n  \"bin\": \"runtime\"\n}\n").expect("write");
        assert!(load_cost_priors(&path).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn steal_stall_defaults_to_zero() {
        // Environment-free default (CI sets RTLT_STEAL_STALL_MS only in
        // the fleet-steal smoke).
        if std::env::var("RTLT_STEAL_STALL_MS").is_err() {
            assert!(steal_stall().is_zero());
        }
    }

    #[test]
    fn bench_from_env_has_store() {
        // The default cache dir is under target/, so the store has a disk
        // tier unless the environment disabled it.
        let b = Bench::from_env();
        assert!(b.store.is_enabled());
        assert!(b.prep_seconds().is_nan());
    }
}
