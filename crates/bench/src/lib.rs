//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary honors two environment variables:
//!
//! * `RTLT_FAST=1` — reduced folds/epochs for smoke runs,
//! * `RTLT_SEED=<u64>` — override the master seed (default 2024).

use rtl_timer::pipeline::{DesignSet, TimerConfig};
use std::time::Instant;

/// Whether fast (smoke) mode is requested.
pub fn fast() -> bool {
    std::env::var("RTLT_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Cross-validation folds: 10 as in the paper, 3 in fast mode.
pub fn folds() -> usize {
    if fast() {
        3
    } else {
        10
    }
}

/// Harness configuration (seed overridable via `RTLT_SEED`).
pub fn config() -> TimerConfig {
    let seed = std::env::var("RTLT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    TimerConfig {
        seed,
        ..TimerConfig::default()
    }
}

/// Prepares the 21-design suite, printing progress timing.
pub fn prepare_suite() -> DesignSet {
    let cfg = config();
    eprintln!(
        "[harness] preparing 21-design suite (threads={}) ...",
        cfg.threads
    );
    let t = Instant::now();
    let set = DesignSet::prepare_suite(&cfg);
    eprintln!("[harness] suite ready in {:.1}s", t.elapsed().as_secs_f64());
    set
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn print(&self) {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
        for r in &self.rows {
            line(r);
        }
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}")
}

/// Draws a compact ASCII histogram of values into `bins` buckets.
pub fn ascii_histogram(values: &[f64], bins: usize, width: usize) -> String {
    if values.is_empty() {
        return String::from("(empty)");
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - min) / span) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut s = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / bins as f64;
        let bar = "#".repeat((c * width).div_ceil(peak).min(width));
        s.push_str(&format!("{lo:8.3} | {bar:<w$} {c}\n", w = width));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_all_bins() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let h = ascii_histogram(&vals, 5, 20);
        assert_eq!(h.lines().count(), 5);
        assert!(h.contains('#'));
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }
}
