//! Minimal JSON rendering for the machine-readable bench reports
//! (`BENCH_<bin>.json`). Hand-rolled — the environment is offline, no
//! serde — and write-only: nothing in the workspace parses JSON back,
//! tooling outside it does.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (kept separate from `Num` to render without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object builder from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{v}` prints shortest-round-trip, which is valid JSON
                    // for finite doubles.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_object() {
        let j = Json::obj([
            ("bin", Json::Str("runtime".into())),
            ("seconds", Json::Num(1.5)),
            ("hits", Json::UInt(21)),
            ("nested", Json::obj([("ok", Json::Bool(true))])),
            ("list", Json::Arr(vec![Json::Int(-1), Json::Null])),
        ]);
        let s = j.render();
        assert!(s.contains("\"bin\": \"runtime\""));
        assert!(s.contains("\"seconds\": 1.5"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("-1"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_and_non_finite() {
        let j = Json::obj([
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("nan", Json::Num(f64::NAN)),
        ]);
        let s = j.render();
        assert!(s.contains("a\\\"b\\\\c\\nd"));
        assert!(s.contains("\"nan\": null"));
    }
}
