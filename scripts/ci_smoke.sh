#!/usr/bin/env bash
# CI smoke lanes, one per invocation: `ci_smoke.sh <job>`.
#
# Each lane drives the *release binaries* (no toolchain needed), so the CI
# matrix runs them as independent jobs off one shared cached build. Runs
# locally too: `cargo build --release && scripts/ci_smoke.sh fleet-steal`.
#
# Environment:
#   BIN_DIR  directory holding runtime/annotate/rtlt-stored
#            (default target/release)
#   SMOKE_TMP scratch root (default: a fresh mktemp -d)
set -euo pipefail

job="${1:?usage: ci_smoke.sh <warm-cache|incremental-annotation|live-annotate|cache-maintenance|remote-store|sharded-prepare|fleet-steal|compressed-store|multiplexed-store|cold-dedup|flat-predict|perf-gate>}"
BIN_DIR="${BIN_DIR:-target/release}"
BIN_DIR="$(cd "$BIN_DIR" && pwd)"
SMOKE_TMP="${SMOKE_TMP:-$(mktemp -d)}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

json_num() { # json_num FILE FIELD — first numeric value of "FIELD": N
  grep -o "\"$1\": *-\?[0-9.]*" "$2" | head -n1 | grep -o '[0-9.-]*$'
}
json_digest() { # json_digest FILE — the suite_digest hex
  grep -o '"suite_digest": *"[a-f0-9]*"' "$1" | grep -o '[a-f0-9]\{64\}'
}

case "$job" in
  # Warm-cache check: the second run must answer suite preparation from
  # the artifact store (>= 90 % prepare-stage hits, and a non-vacuous
  # lookup count — 0 lookups would also report 100 %). The cache dir is
  # job-local on purpose: stage keys carry PIPELINE_EPOCH, and persisting
  # caches across source changes could serve stale artifacts if an epoch
  # bump is forgotten.
  warm-cache)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/rtlt-cache"
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/rtlt-cache"
    rate=$(json_num prepare_hit_rate_pct BENCH_runtime.json)
    lookups=$(json_num prepare_lookups BENCH_runtime.json)
    echo "warm prepare-stage hit rate: ${rate}% over ${lookups} lookups"
    awk -v r="$rate" -v n="$lookups" 'BEGIN { exit !(r >= 90 && n >= 21) }'
    ;;

  # Incremental-annotation smoke: prepare a multi-module design, edit one
  # module, and assert via --selfcheck that only the edited module's cones
  # recompute and that the incremental annotation is byte-identical to a
  # cold recompute. The bin exits non-zero if either breaks.
  incremental-annotation)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/annotate" --selfcheck --cache-dir "$SMOKE_TMP/rtlt-cache"
    grep -o '"speedup": *[0-9.]*' BENCH_annotate.json
    ;;

  # Live annotation service smoke: start `annotate --serve`, drive one
  # scripted edit over TCP with `annotate --connect --selfcheck`, and
  # assert (a) the edit was actually served remotely in one round trip,
  # (b) the warm EDIT→ANNOTATE wall time is < 25 % of a cold full
  # prepare, and (c) byte-identity with the local loop (the selfcheck).
  # Then kill the server and re-run the client: it must degrade to local
  # recompute — used_remote flips false, byte-identity still holds.
  live-annotate)
    cd "$SMOKE_TMP"
    mkdir -p serve-wd client-wd
    # `exec` so $! is the server binary itself, not a wrapping subshell —
    # the kill below must reach the process holding the socket.
    (cd serve-wd && RTLT_FAST=1 exec "$BIN_DIR/annotate" --serve --addr=127.0.0.1:7463 \
      --cache-dir "$SMOKE_TMP/live-cache" > serve.log 2>&1) &
    SERVE_PID=$!
    trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
    for _ in $(seq 1 120); do
      grep -q "listening on" serve-wd/serve.log 2>/dev/null && break
      kill -0 $SERVE_PID 2>/dev/null || { echo "server died during startup"; cat serve-wd/serve.log; exit 1; }
      sleep 1
    done
    grep "listening on" serve-wd/serve.log
    (cd client-wd && RTLT_FAST=1 "$BIN_DIR/annotate" --connect=127.0.0.1:7463 --selfcheck \
      --cache-dir "$SMOKE_TMP/live-client-cache")
    remote=$(grep -o '"used_remote": *[a-z]*' client-wd/BENCH_annotate.json | grep -o '[a-z]*$')
    turns=$(json_num live_round_trips client-wd/BENCH_annotate.json)
    frac=$(json_num warm_over_cold client-wd/BENCH_annotate.json)
    echo "live edit: used_remote=${remote} round_trips=${turns} warm/cold=${frac}"
    test "$remote" = "true"
    awk -v f="$frac" -v t="$turns" 'BEGIN { exit !(f < 0.25 && t == 1) }'
    kill $SERVE_PID 2>/dev/null || true
    wait $SERVE_PID 2>/dev/null || true
    (cd client-wd && RTLT_FAST=1 "$BIN_DIR/annotate" --connect=127.0.0.1:7463 --selfcheck \
      --cache-dir "$SMOKE_TMP/live-client-cache")
    remote=$(grep -o '"used_remote": *[a-z]*' client-wd/BENCH_annotate.json | grep -o '[a-z]*$')
    identical=$(grep -o '"byte_identical": *[a-z]*' client-wd/BENCH_annotate.json | grep -o '[a-z]*$')
    echo "dead-server rerun: used_remote=${remote} byte_identical=${identical}"
    test "$remote" = "false"
    test "$identical" = "true"
    ;;

  # Disk-tier maintenance round-trip: stats, then a full eviction.
  cache-maintenance)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/rtlt-cache"
    "$BIN_DIR/runtime" --cache-stats --cache-dir "$SMOKE_TMP/rtlt-cache"
    "$BIN_DIR/runtime" gc 0 --cache-dir "$SMOKE_TMP/rtlt-cache" | grep -q "KiB remain"
    ;;

  # Shared artifact service smoke: two disjoint local caches against one
  # rtlt-stored. The first run populates the server (write-back); the
  # second starts cold locally and must draw >= 90 % of its prepare
  # artifacts from the remote tier — through the batched (GETM) prefetch —
  # producing a byte-identical suite digest.
  remote-store)
    cd "$SMOKE_TMP"
    "$BIN_DIR/rtlt-stored" --addr 127.0.0.1:7979 --dir "$SMOKE_TMP/stored" &
    STORED_PID=$!
    trap 'kill $STORED_PID 2>/dev/null || true' EXIT
    sleep 1
    RTLT_FAST=1 RTLT_STORE_REMOTE=127.0.0.1:7979 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/remote-a"
    digest_a=$(json_digest BENCH_runtime.json)
    RTLT_FAST=1 RTLT_STORE_REMOTE=127.0.0.1:7979 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/remote-b"
    digest_b=$(json_digest BENCH_runtime.json)
    remote=$(json_num prepare_remote_hits BENCH_runtime.json)
    batched=$(json_num prepare_batched_hits BENCH_runtime.json)
    lookups=$(json_num prepare_lookups BENCH_runtime.json)
    echo "second run: ${remote}/${lookups} prepare artifacts from the remote tier (${batched} batched)"
    awk -v r="$remote" -v b="$batched" -v n="$lookups" \
      'BEGIN { exit !(n >= 21 && r >= 0.9 * n && b >= 1) }'
    test "$digest_a" = "$digest_b"
    ;;

  # Static fleet sharding: two workers prepare disjoint suite shards into
  # disjoint cache dirs, the disk tiers are merged, and a full run over
  # the merged cache must answer warm with a suite digest byte-identical
  # to an unsharded cold prepare.
  sharded-prepare)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/runtime" --shard 0/2 --cache-dir "$SMOKE_TMP/shard0"
    RTLT_FAST=1 "$BIN_DIR/runtime" --shard 1/2 --cache-dir "$SMOKE_TMP/shard1"
    "$BIN_DIR/runtime" merge "$SMOKE_TMP/shard0" "$SMOKE_TMP/shard1" --cache-dir "$SMOKE_TMP/shard-merged"
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/shard-merged"
    digest_merged=$(json_digest BENCH_runtime.json)
    rate=$(json_num prepare_hit_rate_pct BENCH_runtime.json)
    awk -v r="$rate" 'BEGIN { exit !(r >= 90) }'
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/shard-cold-ref"
    digest_cold=$(json_digest BENCH_runtime.json)
    echo "merged=$digest_merged cold=$digest_cold"
    test "$digest_merged" = "$digest_cold"
    ;;

  # Dynamic work-stealing fleet: one rtlt-stored shard planner with a 2 s
  # lease deadline, a handicapped worker (1 thread + an 8 s post-lease
  # stall) and a fast worker. The fast worker must steal the stalled
  # worker's design(s) (plan.requeued >= 1), and the merged caches must
  # reproduce the unsharded cold digest byte-identically — dynamic
  # assignment decides who computes, never what.
  fleet-steal)
    cd "$SMOKE_TMP"
    mkdir -p fast-wd slow-wd merged-wd cold-wd
    "$BIN_DIR/rtlt-stored" --addr 127.0.0.1:7997 --dir "$SMOKE_TMP/steal-store" --lease-timeout 2 &
    STORED_PID=$!
    trap 'kill $STORED_PID 2>/dev/null || true' EXIT
    sleep 1
    (cd slow-wd && RTLT_FAST=1 RTLT_THREADS=1 RTLT_STEAL_STALL_MS=8000 RTLT_WORKER=slow \
      "$BIN_DIR/runtime" --steal --remote 127.0.0.1:7997 --cache-dir "$SMOKE_TMP/steal-slow") &
    SLOW_PID=$!
    sleep 1
    (cd fast-wd && RTLT_FAST=1 RTLT_WORKER=fast \
      "$BIN_DIR/runtime" --steal --remote 127.0.0.1:7997 --cache-dir "$SMOKE_TMP/steal-fast")
    wait $SLOW_PID
    requeued=$(json_num requeued fast-wd/BENCH_runtime.json)
    fast_designs=$(json_num designs fast-wd/BENCH_runtime.json)
    slow_designs=$(json_num designs slow-wd/BENCH_runtime.json)
    completed=$(json_num completed fast-wd/BENCH_runtime.json)
    echo "fast prepared ${fast_designs}, slow prepared ${slow_designs}, ${requeued} design(s) stolen, ${completed} completed"
    awk -v q="$requeued" -v c="$completed" 'BEGIN { exit !(q >= 1 && c >= 21) }'
    "$BIN_DIR/runtime" merge "$SMOKE_TMP/steal-fast" "$SMOKE_TMP/steal-slow" --cache-dir "$SMOKE_TMP/steal-merged"
    (cd merged-wd && RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/steal-merged")
    digest_merged=$(json_digest merged-wd/BENCH_runtime.json)
    rate=$(json_num prepare_hit_rate_pct merged-wd/BENCH_runtime.json)
    awk -v r="$rate" 'BEGIN { exit !(r >= 90) }'
    (cd cold-wd && RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/steal-cold-ref")
    digest_cold=$(json_digest cold-wd/BENCH_runtime.json)
    echo "merged=$digest_merged cold=$digest_cold"
    test "$digest_merged" = "$digest_cold"
    ;;

  # Compression A/B: a packed (default-policy) warm pair vs a raw
  # (RTLT_TIER_POLICY='*=raw') warm pair in disjoint caches. The warm
  # packed run must read >= 40 % fewer featurize frame bytes off disk than
  # the raw one, and all suite digests must be byte-identical —
  # compression changes how artifacts rest, never what they decode to.
  compressed-store)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/packed-cache"
    digest_packed_cold=$(json_digest BENCH_runtime.json)
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/packed-cache"
    digest_packed=$(json_digest BENCH_runtime.json)
    packed=$(json_num featurize_stored_read_bytes BENCH_runtime.json)
    rate=$(json_num prepare_hit_rate_pct BENCH_runtime.json)
    RTLT_FAST=1 RTLT_TIER_POLICY='*=raw' "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/raw-cache"
    RTLT_FAST=1 RTLT_TIER_POLICY='*=raw' "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/raw-cache"
    digest_raw=$(json_digest BENCH_runtime.json)
    raw=$(json_num featurize_stored_read_bytes BENCH_runtime.json)
    echo "warm featurize frame bytes: packed ${packed} vs raw ${raw} ($(awk -v p="$packed" -v r="$raw" 'BEGIN{if (r > 0) printf "%.1f%% saved", 100*(1-p/r); else print "n/a"}'))"
    awk -v p="$packed" -v r="$raw" -v h="$rate" \
      'BEGIN { exit !(r > 0 && p <= 0.6 * r && h >= 90) }'
    test "$digest_packed_cold" = "$digest_packed"
    test "$digest_packed" = "$digest_raw"
    ;;

  # Multiplexed-wire A/B: two cold populate runs against two fresh
  # servers — one pipelined (tagged frames, 8-deep PUT window), one with
  # RTLT_NO_PIPELINE=1 (serialized fallback, one exchange per op). Both
  # must produce byte-identical suite digests; the pipelined run must
  # make measurably fewer wire round trips (observed ~0.5x; gated at
  # 0.75x). A warm pull from the populated server then answers the whole
  # prepare set in a handful of turns, and with both servers killed a
  # fresh run degrades to recompute — same digest, no remote.
  multiplexed-store)
    cd "$SMOKE_TMP"
    "$BIN_DIR/rtlt-stored" --addr 127.0.0.1:7983 --dir "$SMOKE_TMP/mux-pipe-store" &
    PIPE_PID=$!
    "$BIN_DIR/rtlt-stored" --addr 127.0.0.1:7984 --dir "$SMOKE_TMP/mux-serial-store" &
    SERIAL_PID=$!
    trap 'kill $PIPE_PID $SERIAL_PID 2>/dev/null || true' EXIT
    sleep 1
    RTLT_FAST=1 RTLT_STORE_REMOTE=127.0.0.1:7983 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/mux-pipe-a"
    digest_pipe=$(json_digest BENCH_runtime.json)
    rt_pipe=$(json_num remote_round_trips BENCH_runtime.json)
    RTLT_FAST=1 RTLT_NO_PIPELINE=1 RTLT_STORE_REMOTE=127.0.0.1:7984 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/mux-serial-a"
    digest_serial=$(json_digest BENCH_runtime.json)
    rt_serial=$(json_num remote_round_trips BENCH_runtime.json)
    echo "populate round trips: pipelined ${rt_pipe} vs serialized ${rt_serial}"
    awk -v p="$rt_pipe" -v s="$rt_serial" 'BEGIN { exit !(p > 0 && p <= 0.75 * s) }'
    test "$digest_pipe" = "$digest_serial"
    RTLT_FAST=1 RTLT_STORE_REMOTE=127.0.0.1:7983 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/mux-pipe-b"
    digest_warm=$(json_digest BENCH_runtime.json)
    rt_warm=$(json_num remote_round_trips BENCH_runtime.json)
    remote=$(json_num prepare_remote_hits BENCH_runtime.json)
    lookups=$(json_num prepare_lookups BENCH_runtime.json)
    echo "warm pull: ${remote}/${lookups} prepare artifacts remote in ${rt_warm} round trips"
    awk -v w="$rt_warm" -v p="$rt_pipe" -v r="$remote" -v n="$lookups" \
      'BEGIN { exit !(n >= 21 && r >= 0.9 * n && w >= 1 && w * 10 <= p) }'
    test "$digest_warm" = "$digest_pipe"
    kill $PIPE_PID $SERIAL_PID 2>/dev/null || true
    wait $PIPE_PID $SERIAL_PID 2>/dev/null || true
    RTLT_FAST=1 RTLT_STORE_REMOTE=127.0.0.1:7983 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/mux-dead"
    digest_dead=$(json_digest BENCH_runtime.json)
    echo "dead-server digest=$digest_dead populated digest=$digest_pipe"
    test "$digest_dead" = "$digest_pipe"
    ;;

  # Shared-cone dedup A/B: one cold prepare with the deduplicated kernel
  # path (default) vs one with RTLT_NO_CONE_DEDUP=1 (per-signal legacy
  # path), in disjoint fresh caches. The suite digests must be
  # byte-identical — dedup changes who computes an evaluation, never the
  # bytes — the dedup run must actually share work (unique cones strictly
  # fewer than signals, evals saved), and it must not be slower than the
  # legacy path (10 % noise allowance on featurize wall time).
  cold-dedup)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/dedup-cache"
    digest_dedup=$(json_digest BENCH_runtime.json)
    dedup_secs=$(json_num cold_featurize_seconds BENCH_runtime.json)
    unique=$(json_num unique_cones BENCH_runtime.json)
    total=$(json_num total_signals BENCH_runtime.json)
    saved=$(json_num dedup_saved_evals BENCH_runtime.json)
    RTLT_FAST=1 RTLT_NO_CONE_DEDUP=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/nodedup-cache"
    digest_legacy=$(json_digest BENCH_runtime.json)
    legacy_secs=$(json_num cold_featurize_seconds BENCH_runtime.json)
    echo "cold featurize: dedup ${dedup_secs}s (${unique}/${total} unique cones, ${saved} evals saved) vs legacy ${legacy_secs}s"
    test "$digest_dedup" = "$digest_legacy"
    awk -v u="$unique" -v t="$total" -v s="$saved" \
      'BEGIN { exit !(u > 0 && u < t && s > 0) }'
    awk -v d="$dedup_secs" -v l="$legacy_secs" \
      'BEGIN { exit !(l > 0 && d <= 1.10 * l) }'
    ;;

  # Flat-kernel A/B: the full table-6 evaluation (fit + cross-validated
  # prediction) with the flat SoA inference kernel (default) vs
  # RTLT_NO_FLAT_PREDICT=1 (scalar Node walk), in disjoint fresh caches.
  # Every deterministic accuracy field must be byte-identical — the flat
  # kernel changes how a fitted ensemble is traversed, never what it
  # predicts.
  flat-predict)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/table6" --cache-dir "$SMOKE_TMP/flat-cache"
    mv BENCH_table6.json table6-flat.json
    RTLT_FAST=1 RTLT_NO_FLAT_PREDICT=1 "$BIN_DIR/table6" --cache-dir "$SMOKE_TMP/scalar-cache"
    mv BENCH_table6.json table6-scalar.json
    for field in folds \
        avg1_wns_pred_delta_pct avg1_tns_pred_delta_pct \
        avg2_wns_pred_delta_pct avg2_tns_pred_delta_pct \
        avg2_wns_real_delta_pct avg2_tns_real_delta_pct; do
      flat_v=$(json_num "$field" table6-flat.json)
      scalar_v=$(json_num "$field" table6-scalar.json)
      echo "$field: flat=$flat_v scalar=$scalar_v"
      test "$flat_v" = "$scalar_v"
    done
    ;;

  # Perf-regression gate: cold + warm run, then diff the cold-prepare and
  # warm-prepare wall times, hit rate and frame bytes read against the
  # committed baseline; >25 % regression on any axis fails. The cold run's
  # prepare seconds are captured before the warm run overwrites
  # BENCH_runtime.json — that column is what guards the shared-cone
  # featurize kernel. All values land in the job summary.
  perf-gate)
    cd "$SMOKE_TMP"
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/perf-cache"
    cold_secs=$(json_num suite_prep_seconds BENCH_runtime.json)
    RTLT_FAST=1 "$BIN_DIR/runtime" --cache-dir "$SMOKE_TMP/perf-cache"
    fresh_secs=$(json_num suite_prep_seconds BENCH_runtime.json)
    fresh_rate=$(json_num prepare_hit_rate_pct BENCH_runtime.json)
    fresh_bytes=$(json_num prepare_stored_read_bytes BENCH_runtime.json)
    fresh_turns=$(json_num prepare_round_trips BENCH_runtime.json)
    fresh_inf=$(json_num inference_median BENCH_runtime.json)
    base_cold=$(json_num cold_prepare_seconds "$REPO_ROOT/ci/bench-baseline.json")
    base_secs=$(json_num suite_prep_seconds "$REPO_ROOT/ci/bench-baseline.json")
    base_rate=$(json_num prepare_hit_rate_pct "$REPO_ROOT/ci/bench-baseline.json")
    base_bytes=$(json_num prepare_stored_read_bytes "$REPO_ROOT/ci/bench-baseline.json")
    base_turns=$(json_num prepare_round_trips "$REPO_ROOT/ci/bench-baseline.json")
    base_inf=$(json_num inference_median "$REPO_ROOT/ci/bench-baseline.json")
    summary="perf gate: cold prepare ${cold_secs}s (baseline ${base_cold}s, limit $(awk -v b="$base_cold" 'BEGIN{printf "%.3f", b*1.25}')s), warm prepare ${fresh_secs}s (baseline ${base_secs}s, limit $(awk -v b="$base_secs" 'BEGIN{printf "%.3f", b*1.25}')s), hit rate ${fresh_rate}% (baseline ${base_rate}%, floor $(awk -v b="$base_rate" 'BEGIN{printf "%.1f", b*0.75}')%), bytes read ${fresh_bytes} (baseline ${base_bytes}, limit $(awk -v b="$base_bytes" 'BEGIN{printf "%.0f", b*1.25}')), round trips ${fresh_turns} (baseline ${base_turns}, limit $(awk -v b="$base_turns" 'BEGIN{printf "%.0f", b*1.25+1}')), inference median ${fresh_inf}ms (baseline ${base_inf}ms, limit $(awk -v b="$base_inf" 'BEGIN{printf "%.3f", b*1.25}')ms)"
    echo "$summary"
    echo "$summary" >> "${GITHUB_STEP_SUMMARY:-/dev/null}"
    # Round trips get +1 absolute slack on top of the 25 % margin: this
    # lane runs without a remote, so the expected value is exactly 0 and
    # a pure percentage gate would reject any future count at all. The
    # inference-median column guards the flat SoA predict kernel.
    awk -v c="$cold_secs" -v bc="$base_cold" \
        -v s="$fresh_secs" -v bs="$base_secs" -v r="$fresh_rate" -v br="$base_rate" \
        -v y="$fresh_bytes" -v by="$base_bytes" -v t="$fresh_turns" -v bt="$base_turns" \
        -v i="$fresh_inf" -v bi="$base_inf" \
      'BEGIN { exit !(c <= bc * 1.25 && s <= bs * 1.25 && r >= br * 0.75 && y <= by * 1.25 && t <= bt * 1.25 + 1 && i <= bi * 1.25) }'
    ;;

  *)
    echo "error: unknown smoke job '$job'" >&2
    exit 2
    ;;
esac
echo "[ci-smoke] $job OK"
