#!/usr/bin/env bash
# Doc link check: every relative markdown link in README.md and docs/*.md
# must resolve to an existing file. Mirrors tests/docs.rs so the lint lane
# catches broken links without building the workspace.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
failed=0

for page in "$REPO_ROOT/README.md" "$REPO_ROOT"/docs/*.md; do
  dir="$(dirname "$page")"
  # Targets of [text](target), one per line; drop URLs and pure anchors.
  grep -o '](\([^)]*\))' "$page" | sed 's/^](//; s/)$//; s/#.*$//' \
    | while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in http://*|https://*) continue ;; esac
        if [ ! -e "$dir/$target" ]; then
          echo "broken link in ${page#"$REPO_ROOT"/}: $target"
          # set a marker file: the while runs in a subshell
          touch "$REPO_ROOT/.doc-links-failed"
        fi
      done
done

if [ -e "$REPO_ROOT/.doc-links-failed" ]; then
  rm -f "$REPO_ROOT/.doc-links-failed"
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK"
